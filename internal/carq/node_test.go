package carq

import (
	"errors"
	"testing"
	"time"

	"repro/internal/mac"
	"repro/internal/packet"
	"repro/internal/sim"
)

// fakePort records transmitted frames.
type fakePort struct {
	sent []*packet.Frame
	err  error
}

func (p *fakePort) Send(f *packet.Frame) error {
	if p.err != nil {
		return p.err
	}
	p.sent = append(p.sent, f)
	return nil
}

func (p *fakePort) byType(t packet.Type) []*packet.Frame {
	var out []*packet.Frame
	for _, f := range p.sent {
		if f.Type == t {
			out = append(out, f)
		}
	}
	return out
}

type obsRecorder struct {
	phases    []string
	recovered []uint32
	completed int
}

func (o *obsRecorder) OnPhaseChange(id packet.NodeID, from, to Phase, at time.Duration) {
	o.phases = append(o.phases, from.String()+">"+to.String())
}
func (o *obsRecorder) OnRecovered(id packet.NodeID, seq uint32, from packet.NodeID, at time.Duration) {
	o.recovered = append(o.recovered, seq)
}
func (o *obsRecorder) OnComplete(id packet.NodeID, at time.Duration) { o.completed++ }

func newTestNode(t *testing.T, mutate func(*Config)) (*sim.Engine, *Node, *fakePort, *obsRecorder) {
	t.Helper()
	engine := sim.New()
	port := &fakePort{}
	obs := &obsRecorder{}
	cfg := DefaultConfig(1)
	if mutate != nil {
		mutate(&cfg)
	}
	n, err := NewNode(cfg, Deps{
		Ctx: engine, Port: port, RNG: sim.Stream(7, "node"), Observer: obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	return engine, n, port, obs
}

// rx injects a frame into the node at the engine's current time.
func rx(n *Node, f *packet.Frame) { n.HandleFrame(f, mac.RxMeta{RxPowerDBm: -60}) }

const apID packet.NodeID = 100

func TestNewNodeValidation(t *testing.T) {
	engine := sim.New()
	port := &fakePort{}
	rng := sim.Stream(1, "x")
	good := DefaultConfig(1)

	if _, err := NewNode(good, Deps{Ctx: nil, Port: port, RNG: rng}); err == nil {
		t.Fatal("nil ctx accepted")
	}
	if _, err := NewNode(good, Deps{Ctx: engine, Port: nil, RNG: rng}); err == nil {
		t.Fatal("nil port accepted")
	}
	if _, err := NewNode(good, Deps{Ctx: engine, Port: port, RNG: nil}); err == nil {
		t.Fatal("nil rng accepted")
	}
	for _, mutate := range []func(*Config){
		func(c *Config) { c.HelloInterval = 0 },
		func(c *Config) { c.APTimeout = 0 },
		func(c *Config) { c.CoopSlot = 0 },
		func(c *Config) { c.PerResponseTime = 0 },
		func(c *Config) { c.RequestSpacing = -time.Second },
		func(c *Config) { c.BatchRequests = true; c.MaxBatch = 0 },
	} {
		cfg := DefaultConfig(1)
		mutate(&cfg)
		if _, err := NewNode(cfg, Deps{Ctx: engine, Port: port, RNG: rng}); err == nil {
			t.Fatalf("invalid config accepted: %+v", cfg)
		}
	}
}

func TestHelloBeaconing(t *testing.T) {
	engine, n, port, _ := newTestNode(t, nil)
	n.Start()
	if err := engine.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	hellos := port.byType(packet.TypeHello)
	// ~1/s with jitter: expect 9-11 beacons in 10 s.
	if len(hellos) < 8 || len(hellos) > 12 {
		t.Fatalf("sent %d HELLOs in 10 s, want ~10", len(hellos))
	}
	if n.Stats().HellosSent != uint64(len(hellos)) {
		t.Fatalf("stats mismatch: %d vs %d", n.Stats().HellosSent, len(hellos))
	}
}

func TestHelloCarriesCooperatorsInDiscoveryOrder(t *testing.T) {
	engine, n, port, _ := newTestNode(t, nil)
	n.Start()
	// Hear node 3 first, then node 2.
	engine.Schedule(100*time.Millisecond, func() { rx(n, packet.NewHello(3, nil)) })
	engine.Schedule(200*time.Millisecond, func() { rx(n, packet.NewHello(2, nil)) })
	if err := engine.RunUntil(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	hellos := port.byType(packet.TypeHello)
	last := hellos[len(hellos)-1]
	if len(last.List) != 2 || last.List[0] != 3 || last.List[1] != 2 {
		t.Fatalf("cooperator list = %v, want [3 2] (discovery order)", last.List)
	}
	coops := n.Cooperators()
	if len(coops) != 2 || coops[0] != 3 || coops[1] != 2 {
		t.Fatalf("Cooperators() = %v", coops)
	}
}

func TestCandidateExpiry(t *testing.T) {
	engine, n, _, _ := newTestNode(t, nil)
	n.Start()
	engine.Schedule(100*time.Millisecond, func() { rx(n, packet.NewHello(2, nil)) })
	// Node 2 goes silent; after CandidateTTL (3 s) it must drop out.
	if err := engine.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := n.Cooperators(); len(got) != 0 {
		t.Fatalf("stale cooperator kept: %v", got)
	}
}

func TestOwnFlowReceptionAndRange(t *testing.T) {
	engine, n, _, _ := newTestNode(t, nil)
	n.Start()
	engine.Schedule(time.Second, func() {
		rx(n, packet.NewData(apID, 1, 5, []byte("five")))
		rx(n, packet.NewData(apID, 1, 8, []byte("eight")))
		rx(n, packet.NewData(apID, 1, 3, []byte("three")))
		rx(n, packet.NewData(apID, 1, 5, []byte("dup")))
	})
	if err := engine.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	first, last, ok := n.OwnRange()
	if !ok || first != 3 || last != 8 {
		t.Fatalf("OwnRange = %d..%d ok=%v, want 3..8", first, last, ok)
	}
	if !n.Have(5) || !n.Have(8) || !n.Have(3) || n.Have(4) {
		t.Fatal("Have() wrong")
	}
	if p, ok := n.Payload(5); !ok || string(p) != "five" {
		t.Fatalf("Payload(5) = %q, %v (duplicate overwrote?)", p, ok)
	}
	st := n.Stats()
	if st.DataDirect != 3 || st.DataDuplicate != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Default config knows the block starts at seq 1, so the missing
	// list reaches back before the first direct reception.
	want := []uint32{1, 2, 4, 6, 7}
	got := n.Missing()
	if len(got) != len(want) {
		t.Fatalf("Missing = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Missing = %v, want %v", got, want)
		}
	}
	if n.MissingCount() != 5 {
		t.Fatalf("MissingCount = %d", n.MissingCount())
	}
}

func TestMissingStrictFirstReceived(t *testing.T) {
	// KnownFirstSeq = 0: the strict "first received from the AP"
	// interpretation — the ablation variant.
	engine, n, _, _ := newTestNode(t, func(c *Config) { c.KnownFirstSeq = 0 })
	n.Start()
	engine.Schedule(time.Second, func() {
		rx(n, packet.NewData(apID, 1, 3, nil))
		rx(n, packet.NewData(apID, 1, 5, nil))
	})
	if err := engine.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	got := n.Missing()
	if len(got) != 1 || got[0] != 4 {
		t.Fatalf("strict Missing = %v, want [4]", got)
	}
}

func TestBufferingOnlyWhenRecruited(t *testing.T) {
	engine, n, _, _ := newTestNode(t, nil)
	n.Start()
	engine.Schedule(time.Second, func() {
		// DATA for node 2 before node 2 recruits us: not buffered.
		rx(n, packet.NewData(apID, 2, 1, []byte("a")))
		// Node 2's HELLO lists us as cooperator.
		rx(n, packet.NewHello(2, []packet.NodeID{1}))
		// Now DATA for node 2 is buffered.
		rx(n, packet.NewData(apID, 2, 2, []byte("b")))
	})
	if err := engine.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := n.BufferedFor(2); got != 1 {
		t.Fatalf("BufferedFor(2) = %d, want 1", got)
	}
	if n.Stats().DataBuffered != 1 {
		t.Fatalf("DataBuffered = %d", n.Stats().DataBuffered)
	}
}

func TestBufferForAllAblation(t *testing.T) {
	engine, n, _, _ := newTestNode(t, func(c *Config) { c.BufferForAll = true })
	n.Start()
	engine.Schedule(time.Second, func() {
		rx(n, packet.NewData(apID, 2, 1, []byte("a"))) // no recruitment needed
	})
	if err := engine.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := n.BufferedFor(2); got != 1 {
		t.Fatalf("BufferedFor(2) = %d, want 1", got)
	}
}

func TestPhaseTransitions(t *testing.T) {
	engine, n, _, obs := newTestNode(t, nil)
	n.Start()
	if n.Phase() != PhaseIdle {
		t.Fatalf("initial phase = %v", n.Phase())
	}
	engine.Schedule(time.Second, func() { rx(n, packet.NewData(apID, 1, 1, nil)) })
	// Keep coverage alive at 2 s, then silence: coop at ~2s + 5s.
	engine.Schedule(2*time.Second, func() { rx(n, packet.NewData(apID, 1, 2, nil)) })
	if err := engine.RunUntil(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	if n.Phase() != PhaseReception {
		t.Fatalf("phase at 6 s = %v, want reception (timeout restarts)", n.Phase())
	}
	if err := engine.RunUntil(8 * time.Second); err != nil {
		t.Fatal(err)
	}
	if n.Phase() != PhaseCoopARQ {
		t.Fatalf("phase at 8 s = %v, want coop-arq", n.Phase())
	}
	// Back to reception on new AP contact.
	engine.Schedule(0, func() { rx(n, packet.NewData(apID, 1, 3, nil)) })
	if err := engine.RunUntil(9 * time.Second); err != nil {
		t.Fatal(err)
	}
	if n.Phase() != PhaseReception {
		t.Fatalf("phase after re-contact = %v", n.Phase())
	}
	wantPhases := []string{"idle>reception", "reception>coop-arq", "coop-arq>reception"}
	if len(obs.phases) != len(wantPhases) {
		t.Fatalf("phases = %v, want %v", obs.phases, wantPhases)
	}
	for i := range wantPhases {
		if obs.phases[i] != wantPhases[i] {
			t.Fatalf("phases = %v, want %v", obs.phases, wantPhases)
		}
	}
}

func TestRequestCycleSingleMode(t *testing.T) {
	engine, n, port, _ := newTestNode(t, nil)
	n.Start()
	engine.Schedule(time.Second, func() {
		rx(n, packet.NewData(apID, 1, 1, nil))
		rx(n, packet.NewData(apID, 1, 5, nil)) // missing 2,3,4
	})
	if err := engine.RunUntil(8 * time.Second); err != nil {
		t.Fatal(err)
	}
	reqs := port.byType(packet.TypeRequest)
	if len(reqs) < 6 {
		t.Fatalf("only %d REQUESTs in ~2 s of coop, want several cycles", len(reqs))
	}
	// Single mode: one seq per request, cycling 2,3,4,2,3,4...
	for i, r := range reqs {
		if len(r.Seqs) != 1 {
			t.Fatalf("request %d has %d seqs, want 1", i, len(r.Seqs))
		}
		want := uint32(2 + i%3)
		if r.Seqs[0] != want {
			t.Fatalf("request %d = seq %d, want %d", i, r.Seqs[0], want)
		}
	}
}

func TestRequestCycleBatchedMode(t *testing.T) {
	engine, n, port, _ := newTestNode(t, func(c *Config) {
		c.BatchRequests = true
		c.MaxBatch = 2
	})
	n.Start()
	engine.Schedule(time.Second, func() {
		rx(n, packet.NewData(apID, 1, 1, nil))
		rx(n, packet.NewData(apID, 1, 5, nil)) // missing 2,3,4
	})
	if err := engine.RunUntil(7 * time.Second); err != nil {
		t.Fatal(err)
	}
	reqs := port.byType(packet.TypeRequest)
	if len(reqs) < 2 {
		t.Fatalf("only %d batched REQUESTs", len(reqs))
	}
	if len(reqs[0].Seqs) != 2 || reqs[0].Seqs[0] != 2 || reqs[0].Seqs[1] != 3 {
		t.Fatalf("first batch = %v, want [2 3]", reqs[0].Seqs)
	}
	if len(reqs[1].Seqs) != 1 || reqs[1].Seqs[0] != 4 {
		t.Fatalf("second batch = %v, want [4]", reqs[1].Seqs)
	}
}

func TestNoRequestsWhenNothingMissing(t *testing.T) {
	engine, n, port, obs := newTestNode(t, nil)
	n.Start()
	engine.Schedule(time.Second, func() {
		rx(n, packet.NewData(apID, 1, 1, nil))
		rx(n, packet.NewData(apID, 1, 2, nil))
	})
	if err := engine.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := port.byType(packet.TypeRequest); len(got) != 0 {
		t.Fatalf("complete node sent %d REQUESTs", len(got))
	}
	if obs.completed != 1 {
		t.Fatalf("OnComplete fired %d times, want 1", obs.completed)
	}
}

func TestRecoveryStopsRequesting(t *testing.T) {
	engine, n, port, obs := newTestNode(t, nil)
	n.Start()
	engine.Schedule(time.Second, func() {
		rx(n, packet.NewData(apID, 1, 1, nil))
		rx(n, packet.NewData(apID, 1, 3, nil)) // missing 2
	})
	// Another car answers at 7 s (node in coop since ~6 s).
	engine.Schedule(7*time.Second, func() {
		rx(n, packet.NewResponse(2, 1, 2, []byte("rec")))
	})
	if err := engine.RunUntil(12 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !n.Have(2) {
		t.Fatal("packet 2 not recovered")
	}
	if n.Stats().Recovered != 1 {
		t.Fatalf("Recovered = %d", n.Stats().Recovered)
	}
	if len(obs.recovered) != 1 || obs.recovered[0] != 2 {
		t.Fatalf("observer recovered = %v", obs.recovered)
	}
	if obs.completed != 1 {
		t.Fatalf("OnComplete fired %d times", obs.completed)
	}
	// No further requests after recovery.
	reqs := port.byType(packet.TypeRequest)
	for _, r := range reqs {
		if r.Seqs[0] != 2 {
			t.Fatalf("unexpected request for seq %d", r.Seqs[0])
		}
	}
	n2 := len(reqs)
	if err := engine.RunUntil(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(port.byType(packet.TypeRequest)) != n2 {
		t.Fatal("node kept requesting after full recovery")
	}
}

func TestDuplicateResponseCounted(t *testing.T) {
	engine, n, _, _ := newTestNode(t, nil)
	n.Start()
	engine.Schedule(time.Second, func() {
		rx(n, packet.NewData(apID, 1, 1, nil))
		rx(n, packet.NewResponse(2, 1, 1, nil)) // already held
	})
	if err := engine.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if st := n.Stats(); st.RecoveredDuplicate != 1 || st.Recovered != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCooperatorRespondsWithOrderBackoff(t *testing.T) {
	engine, n, port, _ := newTestNode(t, nil)
	n.Start()
	var reqAt time.Duration
	engine.Schedule(time.Second, func() {
		// Node 2 recruits us with order 1 (second cooperator).
		rx(n, packet.NewHello(2, []packet.NodeID{9, 1}))
		// We overhear DATA for node 2.
		rx(n, packet.NewData(apID, 2, 42, []byte("buffered")))
		// Node 2 requests it.
		reqAt = engine.Now()
		rx(n, packet.NewRequest(2, []uint32{42}))
	})
	var respAt time.Duration = -1
	if err := engine.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	resps := port.byType(packet.TypeResponse)
	if len(resps) != 1 {
		t.Fatalf("sent %d responses, want 1", len(resps))
	}
	_ = respAt
	r := resps[0]
	if r.Dst != 2 || r.Seq != 42 || string(r.Payload) != "buffered" {
		t.Fatalf("response = %+v", r)
	}
	_ = reqAt
	if n.Stats().ResponsesSent != 1 {
		t.Fatalf("ResponsesSent = %d", n.Stats().ResponsesSent)
	}
}

func TestResponseDelayMatchesOrder(t *testing.T) {
	// Order 2 with CoopSlot 15 ms: the response fires 30 ms after the
	// request.
	engine, n, port, _ := newTestNode(t, nil)
	n.Start()
	const reqTime = time.Second
	engine.Schedule(reqTime, func() {
		rx(n, packet.NewHello(2, []packet.NodeID{8, 9, 1})) // our order = 2
		rx(n, packet.NewData(apID, 2, 7, nil))
		rx(n, packet.NewRequest(2, []uint32{7}))
	})
	// Sample the port just before and just after the expected fire time.
	var before, after int
	engine.Schedule(reqTime+29*time.Millisecond, func() { before = len(port.byType(packet.TypeResponse)) })
	engine.Schedule(reqTime+31*time.Millisecond, func() { after = len(port.byType(packet.TypeResponse)) })
	if err := engine.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if before != 0 || after != 1 {
		t.Fatalf("response timing wrong: before=%d after=%d", before, after)
	}
}

func TestResponseSuppressionOnOverhear(t *testing.T) {
	engine, n, port, _ := newTestNode(t, nil)
	n.Start()
	engine.Schedule(time.Second, func() {
		rx(n, packet.NewHello(2, []packet.NodeID{9, 1})) // order 1 => 15 ms delay
		rx(n, packet.NewData(apID, 2, 7, nil))
		rx(n, packet.NewRequest(2, []uint32{7}))
	})
	// Cooperator 9 answers first at +5 ms; our pending response must be
	// cancelled.
	engine.Schedule(time.Second+5*time.Millisecond, func() {
		rx(n, packet.NewResponse(9, 2, 7, nil))
	})
	if err := engine.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := port.byType(packet.TypeResponse); len(got) != 0 {
		t.Fatalf("suppressed response was sent: %v", got)
	}
	if n.Stats().ResponsesSuppressed != 1 {
		t.Fatalf("ResponsesSuppressed = %d", n.Stats().ResponsesSuppressed)
	}
}

func TestNoResponseWithoutRecruitment(t *testing.T) {
	engine, n, port, _ := newTestNode(t, nil)
	n.Start()
	engine.Schedule(time.Second, func() {
		// We hear node 2 but its HELLO does NOT list us.
		rx(n, packet.NewHello(2, []packet.NodeID{9}))
		rx(n, packet.NewData(apID, 2, 7, nil)) // not buffered either
		rx(n, packet.NewRequest(2, []uint32{7}))
	})
	if err := engine.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := port.byType(packet.TypeResponse); len(got) != 0 {
		t.Fatalf("un-recruited node responded: %v", got)
	}
}

func TestRequestForUnbufferedPacketIgnored(t *testing.T) {
	engine, n, port, _ := newTestNode(t, nil)
	n.Start()
	engine.Schedule(time.Second, func() {
		rx(n, packet.NewHello(2, []packet.NodeID{1}))
		rx(n, packet.NewRequest(2, []uint32{99})) // never overheard
	})
	if err := engine.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := port.byType(packet.TypeResponse); len(got) != 0 {
		t.Fatalf("responded without holding the packet: %v", got)
	}
}

func TestBatchedRequestServedSequentially(t *testing.T) {
	engine, n, port, _ := newTestNode(t, nil)
	n.Start()
	engine.Schedule(time.Second, func() {
		rx(n, packet.NewHello(2, []packet.NodeID{1})) // order 0
		rx(n, packet.NewData(apID, 2, 1, nil))
		rx(n, packet.NewData(apID, 2, 3, nil))
		rx(n, packet.NewRequest(2, []uint32{1, 2, 3}))
	})
	if err := engine.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	resps := port.byType(packet.TypeResponse)
	if len(resps) != 2 {
		t.Fatalf("sent %d responses, want 2 (held packets only)", len(resps))
	}
	if resps[0].Seq != 1 || resps[1].Seq != 3 {
		t.Fatalf("response seqs = %d, %d; want 1, 3", resps[0].Seq, resps[1].Seq)
	}
}

func TestNoCoopBaseline(t *testing.T) {
	engine, n, port, _ := newTestNode(t, func(c *Config) { c.CoopEnabled = false })
	n.Start()
	engine.Schedule(time.Second, func() {
		rx(n, packet.NewData(apID, 1, 1, nil))
		rx(n, packet.NewData(apID, 1, 5, nil))
		rx(n, packet.NewHello(2, []packet.NodeID{1}))
		rx(n, packet.NewData(apID, 2, 3, nil))
		rx(n, packet.NewRequest(2, []uint32{3}))
	})
	if err := engine.RunUntil(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(port.sent) != 0 {
		t.Fatalf("no-coop node transmitted: %v", port.sent)
	}
	// It still records its own receptions.
	if n.Stats().DataDirect != 2 {
		t.Fatalf("DataDirect = %d", n.Stats().DataDirect)
	}
	// And still recovers nothing / buffers nothing.
	if n.BufferedFor(2) != 0 {
		t.Fatal("no-coop node buffered data")
	}
}

func TestPortErrorsDoNotPanic(t *testing.T) {
	engine := sim.New()
	port := &fakePort{err: errors.New("queue full")}
	cfg := DefaultConfig(1)
	n, err := NewNode(cfg, Deps{Ctx: engine, Port: port, RNG: sim.Stream(1, "x")})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	engine.Schedule(time.Second, func() {
		rx(n, packet.NewData(apID, 1, 1, nil))
		rx(n, packet.NewData(apID, 1, 3, nil))
	})
	if err := engine.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if n.Stats().HellosSent != 0 || n.Stats().RequestsSent != 0 {
		t.Fatalf("stats counted failed sends: %+v", n.Stats())
	}
}

func TestReEnteringCoverageStopsRequests(t *testing.T) {
	engine, n, port, _ := newTestNode(t, nil)
	n.Start()
	engine.Schedule(time.Second, func() {
		rx(n, packet.NewData(apID, 1, 1, nil))
		rx(n, packet.NewData(apID, 1, 4, nil))
	})
	// Coop starts at ~6 s. New AP contact at 8 s.
	engine.Schedule(8*time.Second, func() { rx(n, packet.NewData(apID, 1, 10, nil)) })
	if err := engine.RunUntil(8500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	countAt8 := len(port.byType(packet.TypeRequest))
	if countAt8 == 0 {
		t.Fatal("no requests before re-contact")
	}
	// Requests must not continue while in coverage (next 4 s < timeout).
	if err := engine.RunUntil(12 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := len(port.byType(packet.TypeRequest)); got != countAt8 {
		t.Fatalf("requests continued in coverage: %d -> %d", countAt8, got)
	}
	// And the range extended to 10: missing now 2,3,5,6,7,8,9.
	if n.MissingCount() != 7 {
		t.Fatalf("MissingCount = %d, want 7", n.MissingCount())
	}
}

func TestOverheardResponseBufferingAblation(t *testing.T) {
	engine, n, _, _ := newTestNode(t, func(c *Config) { c.BufferOverheardResponses = true })
	n.Start()
	engine.Schedule(time.Second, func() {
		rx(n, packet.NewHello(2, []packet.NodeID{1})) // we serve node 2
		rx(n, packet.NewResponse(9, 2, 7, []byte("x")))
	})
	if err := engine.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if n.BufferedFor(2) != 1 {
		t.Fatalf("BufferedFor(2) = %d, want 1", n.BufferedFor(2))
	}
}

func TestPhaseString(t *testing.T) {
	for _, tc := range []struct {
		p    Phase
		want string
	}{
		{PhaseIdle, "idle"}, {PhaseReception, "reception"},
		{PhaseCoopARQ, "coop-arq"}, {Phase(9), "Phase(9)"},
	} {
		if got := tc.p.String(); got != tc.want {
			t.Fatalf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestMustNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNode did not panic")
		}
	}()
	MustNode(Config{}, Deps{})
}
