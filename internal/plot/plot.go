// Package plot renders line charts as standalone SVG documents using only
// the standard library — enough to view the reproduced figures in a
// browser next to the paper's originals. The visual style mirrors the
// paper's gnuplot output: a boxed plot area, tick marks, and a legend in
// the plot corner.
package plot

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/stats"
)

// Chart describes one figure.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// Width and Height are the SVG canvas size in pixels; zero values
	// default to 640x420.
	Width, Height int
	// YMin/YMax fix the Y range; used by the reproduction to pin
	// probability axes to [0, 1]. If YMin == YMax the range is derived
	// from the data.
	YMin, YMax float64
	Series     []*stats.Series
}

// FitY pins the Y range to the data: [0, max*(1+pad)]. Counting charts
// (missing packets over time) use it instead of the probability default.
func (c *Chart) FitY(pad float64) {
	var max float64
	for _, s := range c.Series {
		if _, m := s.MinMaxY(); m > max {
			max = m
		}
	}
	c.YMin, c.YMax = 0, max*(1+pad)
}

// palette cycles through line colours reminiscent of gnuplot.
var palette = []string{"#cc0000", "#00aa00", "#0000cc", "#cc8800", "#8800cc", "#008888"}

// dashes cycles line dash patterns so curves stay distinguishable in
// monochrome.
var dashes = []string{"", "6,3", "2,2", "8,3,2,3"}

const margin = 56

// SVG renders the chart.
func (c *Chart) SVG() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 640
	}
	if h <= 0 {
		h = 420
	}
	plotW := float64(w - 2*margin)
	plotH := float64(h - 2*margin)

	xMin, xMax, yMin, yMax := c.bounds()

	xPix := func(x float64) float64 {
		if xMax == xMin {
			return margin
		}
		return margin + (x-xMin)/(xMax-xMin)*plotW
	}
	yPix := func(y float64) float64 {
		if yMax == yMin {
			return margin + plotH
		}
		return margin + plotH - (y-yMin)/(yMax-yMin)*plotH
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")

	// Plot box.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="black"/>`+"\n",
		margin, margin, plotW, plotH)

	// Title and axis labels.
	if c.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle" font-family="sans-serif" font-size="14">%s</text>`+"\n",
			w/2, margin/2, escape(c.Title))
	}
	if c.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle" font-family="sans-serif" font-size="12">%s</text>`+"\n",
			w/2, h-12, escape(c.XLabel))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="14" y="%d" text-anchor="middle" font-family="sans-serif" font-size="12" transform="rotate(-90 14 %d)">%s</text>`+"\n",
			h/2, h/2, escape(c.YLabel))
	}

	// Ticks: five per axis.
	for i := 0; i <= 5; i++ {
		fx := xMin + (xMax-xMin)*float64(i)/5
		px := xPix(fx)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.0f" x2="%.1f" y2="%.0f" stroke="black"/>`+"\n",
			px, float64(margin)+plotH, px, float64(margin)+plotH-5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.0f" text-anchor="middle" font-family="sans-serif" font-size="10">%s</text>`+"\n",
			px, float64(margin)+plotH+16, formatTick(fx))

		fy := yMin + (yMax-yMin)*float64(i)/5
		py := yPix(fy)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`+"\n",
			margin, py, margin+5, py)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" font-family="sans-serif" font-size="10">%s</text>`+"\n",
			margin-6, py+3, formatTick(fy))
	}

	// Series.
	for si, s := range c.Series {
		if s.Len() == 0 {
			continue
		}
		colour := palette[si%len(palette)]
		dash := dashes[si%len(dashes)]
		var path strings.Builder
		for i := range s.X {
			cmd := "L"
			if i == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&path, "%s%.1f %.1f ", cmd, xPix(s.X[i]), yPix(clamp(s.Y[i], yMin, yMax)))
		}
		dashAttr := ""
		if dash != "" {
			dashAttr = fmt.Sprintf(` stroke-dasharray="%s"`, dash)
		}
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="1.5"%s/>`+"\n",
			strings.TrimSpace(path.String()), colour, dashAttr)
	}

	// Legend, top-right inside the plot box.
	for si, s := range c.Series {
		colour := palette[si%len(palette)]
		y := float64(margin) + 16 + float64(si)*16
		x := float64(w-margin) - 170
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1.5"/>`+"\n",
			x, y-4, x+24, y-4, colour)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			x+30, y, escape(s.Name))
	}

	b.WriteString("</svg>\n")
	return b.String()
}

// bounds derives the plotted ranges.
func (c *Chart) bounds() (xMin, xMax, yMin, yMax float64) {
	xMin, xMax = math.Inf(1), math.Inf(-1)
	yMin, yMax = math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			xMin = math.Min(xMin, s.X[i])
			xMax = math.Max(xMax, s.X[i])
			yMin = math.Min(yMin, s.Y[i])
			yMax = math.Max(yMax, s.Y[i])
		}
	}
	if math.IsInf(xMin, 1) {
		xMin, xMax, yMin, yMax = 0, 1, 0, 1
	}
	if c.YMin != c.YMax {
		yMin, yMax = c.YMin, c.YMax
	} else if yMin == yMax {
		yMax = yMin + 1
	}
	if xMin == xMax {
		xMax = xMin + 1
	}
	return xMin, xMax, yMin, yMax
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func formatTick(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e6 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
