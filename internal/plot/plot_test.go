package plot

import (
	"encoding/xml"
	"strings"
	"testing"

	"repro/internal/stats"
)

func sampleChart() *Chart {
	a := &stats.Series{Name: "Rx in car 1"}
	b := &stats.Series{Name: "Rx in car 2"}
	for i := 0; i < 50; i++ {
		a.Append(float64(i), float64(i)/50)
		b.Append(float64(i), 1-float64(i)/50)
	}
	return &Chart{
		Title:  "Probability of reception",
		XLabel: "Packet number",
		YLabel: "Prob. of Reception",
		YMin:   0, YMax: 1,
		Series: []*stats.Series{a, b},
	}
}

func TestSVGIsWellFormedXML(t *testing.T) {
	out := sampleChart().SVG()
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG is not well-formed XML: %v", err)
		}
	}
}

func TestSVGContainsExpectedElements(t *testing.T) {
	out := sampleChart().SVG()
	for _, want := range []string{
		"<svg", "</svg>", "Probability of reception", "Packet number",
		"Prob. of Reception", "Rx in car 1", "Rx in car 2", "<path",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	// Two series => two data paths.
	if got := strings.Count(out, `<path d=`); got != 2 {
		t.Fatalf("path count = %d, want 2", got)
	}
}

func TestSVGEscapesText(t *testing.T) {
	c := sampleChart()
	c.Title = `a<b & "c"`
	out := c.SVG()
	if strings.Contains(out, `a<b`) {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(out, "a&lt;b &amp; &quot;c&quot;") {
		t.Fatal("escaped title missing")
	}
}

func TestSVGEmptyChart(t *testing.T) {
	c := &Chart{Title: "empty"}
	out := c.SVG()
	if !strings.Contains(out, "<svg") || !strings.Contains(out, "</svg>") {
		t.Fatal("degenerate chart did not render")
	}
}

func TestSVGSinglePointSeries(t *testing.T) {
	s := &stats.Series{Name: "dot"}
	s.Append(5, 0.5)
	c := &Chart{Series: []*stats.Series{s}}
	out := c.SVG()
	if !strings.Contains(out, "<path") {
		t.Fatal("single point series missing path")
	}
}

func TestSVGClampsOutOfRangeValues(t *testing.T) {
	s := &stats.Series{Name: "wild"}
	s.Append(0, -5)
	s.Append(1, 5)
	c := &Chart{YMin: 0, YMax: 1, Series: []*stats.Series{s}}
	out := c.SVG()
	// The plot area spans y pixels [margin, margin+plotH]; clamped
	// values must stay inside the canvas.
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Fatal("invalid coordinates in SVG")
	}
}

func TestFormatTick(t *testing.T) {
	if got := formatTick(40); got != "40" {
		t.Fatalf("formatTick(40) = %q", got)
	}
	if got := formatTick(0.25); got != "0.25" {
		t.Fatalf("formatTick(0.25) = %q", got)
	}
}
