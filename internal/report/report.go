// Package report renders the reproduction's experiment outputs: the
// paper-layout Table 1, the Figure 3-8 reception-probability series (as
// gnuplot-ready data plus ASCII charts), and the ablation/extension
// summaries. It is shared by cmd/experiments and the benchmark harness so
// both produce identical artefacts.
package report

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/packet"
	"repro/internal/plot"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Table1 renders the paper's Table 1 from a testbed run, with the
// improvement column appended.
func Table1(res *scenario.TestbedResult) string {
	rows := analysis.Table1(res.Rounds, res.CarIDs)
	var b strings.Builder
	b.WriteString("Table 1. Average values on the number of packets received and lost in the cars.\n\n")
	b.WriteString(analysis.FormatTable1(rows))
	b.WriteString("\n")
	for i, r := range rows {
		fmt.Fprintf(&b, "car %d: %.0f%% of pre-cooperation losses recovered (over %d rounds)\n",
			i+1, 100*r.Improvement(), r.Rounds)
	}
	return b.String()
}

// Table1Rows exposes the raw rows for programmatic checks.
func Table1Rows(res *scenario.TestbedResult) []*analysis.Table1Row {
	return analysis.Table1(res.Rounds, res.CarIDs)
}

// RowsFor computes Table-1 style rows for any scenario's round traces,
// so non-testbed experiments (highway, two-way) get the same per-car
// loss/improvement summary without faking a TestbedResult.
func RowsFor(rounds []*trace.Collector, cars []packet.NodeID) []*analysis.Table1Row {
	return analysis.Table1(rounds, cars)
}

// ReceptionFigure renders Figure 3/4/5 for one car's flow: probability of
// reception of that flow's packets at every car, across the packet-number
// window, plus the per-region means.
type ReceptionFigure struct {
	Flow    packet.NodeID
	Window  [2]uint32
	Series  []*stats.Series
	Regions *analysis.RegionReport
}

// NewReceptionFigure computes the figure data for flow `flow`.
func NewReceptionFigure(rounds []*trace.Collector, cars []packet.NodeID, flow packet.NodeID) (*ReceptionFigure, error) {
	lo, hi, ok := analysis.Window(rounds, flow, cars)
	if !ok {
		return nil, fmt.Errorf("report: no reception window for flow %v", flow)
	}
	fig := &ReceptionFigure{Flow: flow, Window: [2]uint32{lo, hi}}
	for _, car := range cars {
		s := analysis.ReceptionSeries(rounds, flow, car, lo, hi)
		s.Name = fmt.Sprintf("Rx in car %v", car)
		fig.Series = append(fig.Series, s)
	}
	fig.Regions = analysis.NewRegionReport(analysis.SplitRegions(lo, hi), fig.Series...)
	return fig, nil
}

// String renders the figure as an ASCII chart plus region table.
func (f *ReceptionFigure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Probability of reception of packets addressed to car %v (window %d..%d)\n\n",
		f.Flow, f.Window[0], f.Window[1])
	b.WriteString(stats.AsciiChart(72, 16, f.Series...))
	b.WriteString("\n")
	b.WriteString(f.Regions.String())
	return b.String()
}

// GnuplotData emits the figure's series as gnuplot blocks.
func (f *ReceptionFigure) GnuplotData() string {
	var b strings.Builder
	for _, s := range f.Series {
		b.WriteString(s.GnuplotData())
		b.WriteString("\n\n")
	}
	return b.String()
}

// SVG renders the figure as a standalone SVG document in the paper's
// visual style.
func (f *ReceptionFigure) SVG() string {
	c := plot.Chart{
		Title:  fmt.Sprintf("Probability of reception in packets addressed to car %v", f.Flow),
		XLabel: "Packet number",
		YLabel: "Prob. of Reception",
		YMin:   0, YMax: 1,
		Series: f.Series,
	}
	return c.SVG()
}

// CoopFigure renders Figure 6/7/8 for one car: the probability of holding
// each own-flow packet after the Cooperative-ARQ phase against the joint
// ("virtual car") reception oracle.
type CoopFigure struct {
	Car       packet.NodeID
	Window    [2]uint32
	AfterCoop *stats.Series
	Joint     *stats.Series
	MaxGap    float64
	MeanGap   float64
}

// NewCoopFigure computes the figure data for one car.
func NewCoopFigure(rounds []*trace.Collector, cars []packet.NodeID, car packet.NodeID) (*CoopFigure, error) {
	lo, hi, ok := analysis.Window(rounds, car, cars)
	if !ok {
		return nil, fmt.Errorf("report: no reception window for car %v", car)
	}
	after := analysis.AfterCoopSeries(rounds, car, lo, hi)
	after.Name = fmt.Sprintf("Rx in car %v after coop", car)
	joint := analysis.JointSeries(rounds, car, cars, lo, hi)
	joint.Name = "Joint Rx in any car"
	maxGap, meanGap := analysis.OptimalityGap(after, joint)
	return &CoopFigure{
		Car:       car,
		Window:    [2]uint32{lo, hi},
		AfterCoop: after, Joint: joint,
		MaxGap: maxGap, MeanGap: meanGap,
	}, nil
}

// String renders the figure as an ASCII chart plus the optimality gap.
func (f *CoopFigure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Probability of reception with C-ARQ in car %v vs joint reception (window %d..%d)\n\n",
		f.Car, f.Window[0], f.Window[1])
	b.WriteString(stats.AsciiChart(72, 16, f.AfterCoop, f.Joint))
	fmt.Fprintf(&b, "\noptimality gap: max %.3f, mean %.3f (0 = after-coop curve coincides with the virtual-car oracle)\n",
		f.MaxGap, f.MeanGap)
	return b.String()
}

// GnuplotData emits the figure's two series as gnuplot blocks.
func (f *CoopFigure) GnuplotData() string {
	return f.AfterCoop.GnuplotData() + "\n\n" + f.Joint.GnuplotData()
}

// SVG renders the figure as a standalone SVG document.
func (f *CoopFigure) SVG() string {
	c := plot.Chart{
		Title:  fmt.Sprintf("Probability of reception with C-ARQ in car %v", f.Car),
		XLabel: "Packet number",
		YLabel: "Prob. of Reception",
		YMin:   0, YMax: 1,
		Series: []*stats.Series{f.AfterCoop, f.Joint},
	}
	return c.SVG()
}

// OverheadSummary aggregates protocol overhead across rounds.
func OverheadSummary(rounds []*trace.Collector) analysis.Overhead {
	var total analysis.Overhead
	for _, r := range rounds {
		o := analysis.MeasureOverhead(r)
		total.DataTx += o.DataTx
		total.HelloTx += o.HelloTx
		total.RequestTx += o.RequestTx
		total.ResponseTx += o.ResponseTx
		total.HelloBytes += o.HelloBytes
		total.RequestBytes += o.RequestBytes
		total.ResponseBytes += o.ResponseBytes
	}
	return total
}

// FormatOverhead renders an overhead summary.
func FormatOverhead(name string, o analysis.Overhead) string {
	return fmt.Sprintf("%-24s data=%d hello=%d request=%d (%d B) response=%d (%d B) control-total=%d\n",
		name, o.DataTx, o.HelloTx, o.RequestTx, o.RequestBytes, o.ResponseTx, o.ResponseBytes, o.ControlTx())
}
