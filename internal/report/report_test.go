package report

import (
	"strings"
	"testing"
	"time"

	"repro/internal/mac"
	"repro/internal/packet"
	"repro/internal/scenario"
	"repro/internal/trace"
)

const apID packet.NodeID = 100

// fabricate builds a two-round result with known receptions.
func fabricate() *scenario.TestbedResult {
	mkRound := func() *trace.Collector {
		c := &trace.Collector{}
		for _, car := range []packet.NodeID{1, 2} {
			for seq := uint32(1); seq <= 10; seq++ {
				c.OnTx(apID, packet.NewData(apID, car, seq, nil), time.Duration(seq)*time.Second, time.Millisecond)
			}
		}
		// Car 1 receives odd seqs, car 2 receives car 1's even seqs.
		for seq := uint32(1); seq <= 10; seq += 2 {
			c.OnRx(1, packet.NewData(apID, 1, seq, nil), mac.RxMeta{At: time.Duration(seq) * time.Second})
		}
		for seq := uint32(2); seq <= 10; seq += 2 {
			c.OnRx(2, packet.NewData(apID, 1, seq, nil), mac.RxMeta{At: time.Duration(seq) * time.Second})
			c.OnRx(2, packet.NewData(apID, 2, seq, nil), mac.RxMeta{At: time.Duration(seq) * time.Second})
		}
		// Car 1 recovers the even seqs from car 2.
		for seq := uint32(2); seq <= 10; seq += 2 {
			c.OnRecovered(1, seq, 2, 100*time.Second)
		}
		return c
	}
	return &scenario.TestbedResult{
		Rounds: []*trace.Collector{mkRound(), mkRound()},
		CarIDs: []packet.NodeID{1, 2},
	}
}

func TestTable1Report(t *testing.T) {
	res := fabricate()
	out := Table1(res)
	if !strings.Contains(out, "Lost before coop") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "recovered") {
		t.Fatalf("missing improvement line:\n%s", out)
	}
	rows := Table1Rows(res)
	// Car 1: window 1..9 (odd receptions), 9 offered, 4 lost before
	// (2,4,6,8), 0 lost after (recovered).
	if rows[0].TxByAP.Mean() != 9 || rows[0].LostBefore.Mean() != 4 || rows[0].LostAfter.Mean() != 0 {
		t.Fatalf("car1 row: tx=%v before=%v after=%v",
			rows[0].TxByAP.Mean(), rows[0].LostBefore.Mean(), rows[0].LostAfter.Mean())
	}
}

func TestReceptionFigure(t *testing.T) {
	res := fabricate()
	fig, err := NewReceptionFigure(res.Rounds, res.CarIDs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fig.Window != [2]uint32{1, 10} {
		t.Fatalf("window = %v", fig.Window)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	out := fig.String()
	if !strings.Contains(out, "Region I") || !strings.Contains(out, "Rx in car") {
		t.Fatalf("figure output:\n%s", out)
	}
	if !strings.Contains(fig.GnuplotData(), "# Rx in car") {
		t.Fatal("gnuplot data missing headers")
	}
}

func TestReceptionFigureNoWindow(t *testing.T) {
	empty := &scenario.TestbedResult{
		Rounds: []*trace.Collector{{}},
		CarIDs: []packet.NodeID{1},
	}
	if _, err := NewReceptionFigure(empty.Rounds, empty.CarIDs, 1); err == nil {
		t.Fatal("empty rounds produced a figure")
	}
	if _, err := NewCoopFigure(empty.Rounds, empty.CarIDs, 1); err == nil {
		t.Fatal("empty rounds produced a coop figure")
	}
}

func TestCoopFigureOptimal(t *testing.T) {
	res := fabricate()
	fig, err := NewCoopFigure(res.Rounds, res.CarIDs, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Car 1 recovered everything car 2 had: curves coincide.
	if fig.MaxGap != 0 || fig.MeanGap != 0 {
		t.Fatalf("gap = %v/%v, want 0/0", fig.MaxGap, fig.MeanGap)
	}
	if !strings.Contains(fig.String(), "optimality gap") {
		t.Fatal("missing gap line")
	}
	if fig.GnuplotData() == "" {
		t.Fatal("empty gnuplot data")
	}
}

func TestOverheadSummary(t *testing.T) {
	res := fabricate()
	res.Rounds[0].OnTx(1, packet.NewHello(1, nil), 0, time.Millisecond)
	res.Rounds[1].OnTx(1, packet.NewRequest(1, []uint32{2}), 0, time.Millisecond)
	o := OverheadSummary(res.Rounds)
	if o.HelloTx != 1 || o.RequestTx != 1 || o.DataTx != 40 {
		t.Fatalf("overhead = %+v", o)
	}
	if !strings.Contains(FormatOverhead("x", o), "request=1") {
		t.Fatal("FormatOverhead missing fields")
	}
}
