package report

import (
	"encoding/xml"
	"io"
	"strings"
	"testing"
)

func TestTestbedMapSVG(t *testing.T) {
	out := TestbedMapSVG()
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("map SVG not well-formed: %v", err)
		}
	}
	for _, want := range []string{"AP", "buildings", "coverage window", ">C<"} {
		if !strings.Contains(out, want) {
			t.Fatalf("map SVG missing %q", want)
		}
	}
}
