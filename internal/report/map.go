package report

import (
	"fmt"
	"strings"

	"repro/internal/geom"
	"repro/internal/scenario"
)

// TestbedMapSVG renders the reproduction's answer to the paper's Figure 2
// (the testbed map): the block circuit the platoon drives, the building
// footprint that obstructs propagation, the AP antenna position, and the
// main-street coverage stretch.
func TestbedMapSVG() string {
	loop := scenario.TestbedLoop()
	building := scenario.TestbedBuilding()
	apPos := scenario.TestbedAPPosition()

	// Canvas with padding; world coordinates are metres, flipped so
	// north is up.
	pts := loop.Points()
	minX, minY, maxX, maxY := bounds(pts)
	const pad = 30.0
	scale := 3.0
	w := (maxX-minX)*scale + 2*pad
	h := (maxY-minY)*scale + 2*pad
	x := func(wx float64) float64 { return pad + (wx-minX)*scale }
	y := func(wy float64) float64 { return h - pad - (wy-minY)*scale }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n", w, h, w, h)
	b.WriteString(`<rect width="100%" height="100%" fill="#f8f8f4"/>` + "\n")

	// Building block.
	fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#d8cfc0" stroke="#a89f90"/>`+"\n",
		x(building.MinX), y(building.MaxY),
		(building.MaxX-building.MinX)*scale, (building.MaxY-building.MinY)*scale)
	fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle" font-family="sans-serif" font-size="12" fill="#6a6156">buildings</text>`+"\n",
		x((building.MinX+building.MaxX)/2), y((building.MinY+building.MaxY)/2))

	// Driving circuit with direction arrows.
	var path strings.Builder
	for i, p := range pts {
		cmd := "L"
		if i == 0 {
			cmd = "M"
		}
		fmt.Fprintf(&path, "%s%.1f %.1f ", cmd, x(p.X), y(p.Y))
	}
	fmt.Fprintf(&b, `<path d="%sZ" fill="none" stroke="#3465a4" stroke-width="3" stroke-dasharray="10,4"/>`+"\n",
		strings.TrimSpace(path.String()))

	// AP antenna.
	fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="5" fill="#cc0000"/>`+"\n", x(apPos.X), y(apPos.Y))
	fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="12" fill="#cc0000">AP</text>`+"\n",
		x(apPos.X)+8, y(apPos.Y)+4)

	// Coverage stretch: the main street (south edge) highlighted.
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#cc0000" stroke-width="7" stroke-opacity="0.25"/>`+"\n",
		x(minX), y(minY), x(maxX), y(minY))
	fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle" font-family="sans-serif" font-size="11" fill="#884444">coverage window (main street)</text>`+"\n",
		x((minX+maxX)/2), y(minY)+18)

	// Corner C: where car 3 closes up on car 2.
	fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="4" fill="none" stroke="#2a7a2a" stroke-width="2"/>`+"\n",
		x(maxX), y(minY))
	fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="12" fill="#2a7a2a">C</text>`+"\n",
		x(maxX)+7, y(minY)-6)

	b.WriteString("</svg>\n")
	return b.String()
}

func bounds(pts []geom.Point) (minX, minY, maxX, maxY float64) {
	minX, minY = pts[0].X, pts[0].Y
	maxX, maxY = pts[0].X, pts[0].Y
	for _, p := range pts[1:] {
		if p.X < minX {
			minX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	return minX, minY, maxX, maxY
}
