// Package metrics is the instrumentation layer of the sweep system: a
// small, allocation-free registry of counters, gauges and duration
// histograms with named handles resolved once at setup, a deterministic
// Snapshot rendered to both JSON and Prometheus text exposition format,
// and a global-off default.
//
// Two disciplines keep it out of the simulation's way:
//
//   - Determinism. Counters live entirely off the RNG and event-ordering
//     paths: recording a count never draws randomness, never schedules an
//     event, never changes what a simulation does. With metrics on, every
//     scenario's traces and the run manifest stay byte-identical to a
//     metrics-off run (test-enforced across all scenario families).
//
//   - Cost. Single-threaded simulation hot paths (the event loop, the
//     radio medium) keep plain uint64 fields on their own structs —
//     cheaper than any branch — and flush them into the shared registry
//     once per round behind a single Enabled() check. Atomics appear only
//     at harness level, where units run concurrently.
//
// Handles are resolved once (typically in a package-level var block) and
// incremented directly; the registry is only scanned by Snapshot.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// enabled is the global collection switch. Off by default: instrumented
// paths that consult it pay one predictable branch (the load compiles to
// a plain MOV on the usual targets) and skip all registry work.
var enabled atomic.Bool

// Enabled reports whether metric collection is on.
func Enabled() bool { return enabled.Load() }

// SetEnabled flips global metric collection. Flip it before starting
// work that should be measured; counts recorded while disabled are
// simply never taken (call sites skip their flush).
func SetEnabled(on bool) { enabled.Store(on) }

// Counter is a monotonically increasing count. Safe for concurrent use;
// single-threaded hot paths should accumulate locally and Add once.
type Counter struct {
	v     atomic.Uint64
	name  string // family name
	label string // label value under the family's label key; "" for none
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Name returns the counter's registered (family) name.
func (c *Counter) Name() string { return c.name }

// Gauge is a current-value metric (an int64, which covers every use in
// this system: depths, entry counts, byte totals).
type Gauge struct {
	v    atomic.Int64
	name string
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// SetMax raises the gauge to v if v is larger — the high-water-mark
// operation. Concurrent raisers converge on the true maximum.
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// histBuckets are the fixed log-scaled duration bucket bounds, in
// seconds: 1 ms doubling up to ~1049 s. Fixed bounds keep observation
// allocation-free and make every histogram comparable across runs.
var histBuckets = func() []float64 {
	b := make([]float64, 21)
	v := 1e-3
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

// Histogram is a fixed-bucket duration histogram (seconds, log-scaled
// bounds; see histBuckets). Observations are lock-free.
type Histogram struct {
	counts [len22]atomic.Uint64 // one per bucket, last is +Inf
	sum    atomic.Uint64        // float64 bits of the running sum
	name   string
}

// len22 is len(histBuckets)+1; Go needs a constant for the array.
const len22 = 22

// Observe records a duration in seconds.
func (h *Histogram) Observe(seconds float64) {
	i := sort.SearchFloat64s(histBuckets, seconds)
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		new := math.Float64bits(math.Float64frombits(old) + seconds)
		if h.sum.CompareAndSwap(old, new) {
			return
		}
	}
}

// ObserveDuration records d.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// Registry holds the registered metrics of one process. Registration is
// idempotent by name, so handles can be resolved from several packages
// without coordination; it is cheap but mutex-guarded — resolve handles
// once at setup, not on hot paths.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter // key: name + "\x00" + label
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	// labelKeys maps a counter family name to its label key ("" for
	// plain counters); a family never mixes labelled and plain samples.
	labelKeys map[string]string
	help      map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		labelKeys:  make(map[string]string),
		help:       make(map[string]string),
	}
}

// def is the default registry every package-level handle resolves in.
var def = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return def }

func (r *Registry) setMeta(name, labelKey, help string) {
	if have, ok := r.labelKeys[name]; ok && have != labelKey {
		panic(fmt.Sprintf("metrics: %s registered with label %q and %q", name, have, labelKey))
	}
	r.labelKeys[name] = labelKey
	if help != "" {
		r.help[name] = help
	}
}

// Counter registers (or returns the existing) plain counter name.
func (r *Registry) Counter(name, help string) *Counter {
	mustValidName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.setMeta(name, "", help)
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// LabelledCounter registers (or returns the existing) counter sample
// name{labelKey="labelValue"}. All samples of one family must share one
// label key.
func (r *Registry) LabelledCounter(name, help, labelKey, labelValue string) *Counter {
	mustValidName(name)
	mustValidName(labelKey)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.setMeta(name, labelKey, help)
	key := name + "\x00" + labelValue
	if c, ok := r.counters[key]; ok {
		return c
	}
	c := &Counter{name: name, label: labelValue}
	r.counters[key] = c
	return c
}

// Gauge registers (or returns the existing) gauge name.
func (r *Registry) Gauge(name, help string) *Gauge {
	mustValidName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	if help != "" {
		r.help[name] = help
	}
	g := &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// Histogram registers (or returns the existing) duration histogram name.
func (r *Registry) Histogram(name, help string) *Histogram {
	mustValidName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	if help != "" {
		r.help[name] = help
	}
	h := &Histogram{name: name}
	r.histograms[name] = h
	return h
}

// NewCounter, NewLabelledCounter, NewGauge and NewHistogram resolve
// handles in the default registry — the forms package-level var blocks
// use.
func NewCounter(name, help string) *Counter { return def.Counter(name, help) }

// NewLabelledCounter is Registry.LabelledCounter on the default registry.
func NewLabelledCounter(name, help, labelKey, labelValue string) *Counter {
	return def.LabelledCounter(name, help, labelKey, labelValue)
}

// NewGauge is Registry.Gauge on the default registry.
func NewGauge(name, help string) *Gauge { return def.Gauge(name, help) }

// NewHistogram is Registry.Histogram on the default registry.
func NewHistogram(name, help string) *Histogram { return def.Histogram(name, help) }

// mustValidName enforces the Prometheus metric/label name charset, so a
// registered handle can always be rendered.
func mustValidName(name string) {
	if !ValidName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
}

// ValidName reports whether name matches [a-zA-Z_:][a-zA-Z0-9_:]*, the
// Prometheus metric name charset.
func ValidName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// CounterSample is one counter value in a snapshot. Label is the value
// under the family's LabelKey; both are empty for plain counters.
type CounterSample struct {
	Name     string `json:"name"`
	LabelKey string `json:"label_key,omitempty"`
	Label    string `json:"label,omitempty"`
	Value    uint64 `json:"value"`
}

// GaugeSample is one gauge value in a snapshot.
type GaugeSample struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramSample is one histogram's state in a snapshot. Buckets holds
// cumulative counts per upper bound (Bounds), with the final entry the
// +Inf bucket; Sum is the sum of observations in seconds.
type HistogramSample struct {
	Name    string    `json:"name"`
	Bounds  []float64 `json:"bounds"`
	Buckets []uint64  `json:"buckets"`
	Count   uint64    `json:"count"`
	Sum     float64   `json:"sum"`
}

// Snapshot is a point-in-time copy of a registry, ordered by name (and
// label within a family) so rendering is deterministic. Help carries the
// registered help strings by family name.
type Snapshot struct {
	Counters   []CounterSample   `json:"counters,omitempty"`
	Gauges     []GaugeSample     `json:"gauges,omitempty"`
	Histograms []HistogramSample `json:"histograms,omitempty"`
	Help       map[string]string `json:"help,omitempty"`
}

// Snapshot copies the registry's current values. Safe to call at any
// time, including concurrently with recording.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{Help: make(map[string]string, len(r.help))}
	for name, help := range r.help {
		s.Help[name] = help
	}
	for _, c := range r.counters {
		s.Counters = append(s.Counters, CounterSample{
			Name:     c.name,
			LabelKey: r.labelKeys[c.name],
			Label:    c.label,
			Value:    c.Value(),
		})
	}
	for _, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSample{Name: g.name, Value: g.Value()})
	}
	for _, h := range r.histograms {
		hs := HistogramSample{Name: h.name, Bounds: histBuckets}
		var cum uint64
		for i := range h.counts {
			cum += h.counts[i].Load()
			hs.Buckets = append(hs.Buckets, cum)
		}
		hs.Count = cum
		hs.Sum = math.Float64frombits(h.sum.Load())
		s.Histograms = append(s.Histograms, hs)
	}
	s.sort()
	return s
}

func (s *Snapshot) sort() {
	sort.Slice(s.Counters, func(i, j int) bool {
		if s.Counters[i].Name != s.Counters[j].Name {
			return s.Counters[i].Name < s.Counters[j].Name
		}
		return s.Counters[i].Label < s.Counters[j].Label
	})
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
}

// Deterministic returns the snapshot restricted to its deterministic
// sections: counters and gauges (counts of things that happened), never
// histograms (wall-clock durations). This is what a run persists as
// metrics.json — see the determinism contract in the README.
func (s Snapshot) Deterministic() Snapshot {
	out := Snapshot{Counters: s.Counters, Gauges: s.Gauges, Help: s.Help}
	return out
}

// Merge returns s with other's families appended, skipping any family s
// already carries. sweepd uses it to overlay its live serving metrics on
// a run's persisted snapshot without duplicating families that exist
// (with real values) in the run and (as zero-valued registrations) in
// the serving process.
func (s Snapshot) Merge(other Snapshot) Snapshot {
	have := make(map[string]bool)
	for _, c := range s.Counters {
		have[c.Name] = true
	}
	for _, g := range s.Gauges {
		have[g.Name] = true
	}
	for _, h := range s.Histograms {
		have[h.Name] = true
	}
	out := Snapshot{
		Counters:   append([]CounterSample(nil), s.Counters...),
		Gauges:     append([]GaugeSample(nil), s.Gauges...),
		Histograms: append([]HistogramSample(nil), s.Histograms...),
	}
	out.Help = make(map[string]string, len(s.Help))
	for k, v := range s.Help {
		out.Help[k] = v
	}
	for _, c := range other.Counters {
		if !have[c.Name] {
			out.Counters = append(out.Counters, c)
		}
	}
	for _, g := range other.Gauges {
		if !have[g.Name] {
			out.Gauges = append(out.Gauges, g)
		}
	}
	for _, h := range other.Histograms {
		if !have[h.Name] {
			out.Histograms = append(out.Histograms, h)
		}
	}
	for k, v := range other.Help {
		if _, ok := out.Help[k]; !ok {
			out.Help[k] = v
		}
	}
	out.sort()
	return out
}

// WriteJSON renders the snapshot as indented JSON with a trailing
// newline.
func (s Snapshot) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ReadSnapshotJSON parses a snapshot written by WriteJSON.
func ReadSnapshotJSON(data []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("metrics: snapshot: %w", err)
	}
	s.sort()
	return s, nil
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE comments per family, then one
// sample line per value, histograms as cumulative _bucket series plus
// _sum and _count.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	lastFamily := ""
	for _, c := range s.Counters {
		if c.Name != lastFamily {
			lastFamily = c.Name
			writeMeta(pf, s.Help, c.Name, "counter")
		}
		if c.Label != "" {
			pf("%s{%s=%q} %d\n", c.Name, c.LabelKey, c.Label, c.Value)
		} else {
			pf("%s %d\n", c.Name, c.Value)
		}
	}
	for _, g := range s.Gauges {
		writeMeta(pf, s.Help, g.Name, "gauge")
		pf("%s %d\n", g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		writeMeta(pf, s.Help, h.Name, "histogram")
		for i, cum := range h.Buckets {
			le := "+Inf"
			if i < len(h.Bounds) {
				le = formatBound(h.Bounds[i])
			}
			pf("%s_bucket{le=%q} %d\n", h.Name, le, cum)
		}
		pf("%s_sum %s\n", h.Name, formatBound(h.Sum))
		pf("%s_count %d\n", h.Name, h.Count)
	}
	return err
}

func writeMeta(pf func(string, ...any), help map[string]string, name, typ string) {
	if h := help[name]; h != "" {
		pf("# HELP %s %s\n", name, h)
	}
	pf("# TYPE %s %s\n", name, typ)
}

// formatBound renders a float bucket bound or sum the shortest way that
// round-trips.
func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
