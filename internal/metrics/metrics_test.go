package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_total", "help")
	b := r.Counter("test_total", "")
	if a != b {
		t.Fatal("same name resolved two handles")
	}
	a.Add(3)
	b.Inc()
	if got := a.Value(); got != 4 {
		t.Fatalf("value = %d, want 4", got)
	}
}

func TestLabelledCounterFamilies(t *testing.T) {
	r := NewRegistry()
	a := r.LabelledCounter("drops_total", "drops", "cause", "collision")
	b := r.LabelledCounter("drops_total", "", "cause", "channel")
	if a == b {
		t.Fatal("different label values share a handle")
	}
	if r.LabelledCounter("drops_total", "", "cause", "collision") != a {
		t.Fatal("same label value resolved a new handle")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mixing label keys in one family did not panic")
		}
	}()
	r.LabelledCounter("drops_total", "", "reason", "x")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "1abc", "with space", "dash-ed", "ütf"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
	for _, good := range []string{"a", "_x", "ns:sub_total", "A9_b"} {
		if !ValidName(good) {
			t.Errorf("ValidName(%q) = false", good)
		}
	}
}

func TestGaugeSetMax(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth_high_water", "")
	g.SetMax(5)
	g.SetMax(3)
	if got := g.Value(); got != 5 {
		t.Fatalf("value = %d, want 5", got)
	}
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("value = %d, want 9", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("unit_seconds", "")
	h.Observe(0.0005)              // below the first bound -> bucket 0
	h.ObserveDuration(time.Second) // exactly the 1s bound -> its bucket (le is inclusive)
	h.Observe(1e6)                 // beyond every bound -> +Inf only
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("histograms = %d", len(s.Histograms))
	}
	hs := s.Histograms[0]
	if hs.Count != 3 {
		t.Fatalf("count = %d, want 3", hs.Count)
	}
	if got, want := hs.Sum, 0.0005+1+1e6; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	if len(hs.Buckets) != len(hs.Bounds)+1 {
		t.Fatalf("buckets = %d, bounds = %d", len(hs.Buckets), len(hs.Bounds))
	}
	if hs.Buckets[0] != 1 {
		t.Fatalf("first bucket = %d, want 1", hs.Buckets[0])
	}
	// Cumulative: every bucket >= its predecessor, +Inf holds everything.
	for i := 1; i < len(hs.Buckets); i++ {
		if hs.Buckets[i] < hs.Buckets[i-1] {
			t.Fatalf("bucket %d (%d) < bucket %d (%d)", i, hs.Buckets[i], i-1, hs.Buckets[i-1])
		}
	}
	if last := hs.Buckets[len(hs.Buckets)-1]; last != 3 {
		t.Fatalf("+Inf bucket = %d, want 3", last)
	}
	// The 1 s observation must land at the le="1" bound, not the next.
	for i, b := range hs.Bounds {
		if b == 1 {
			if prev := hs.Buckets[i-1]; prev != 1 {
				t.Fatalf("bucket below 1s = %d, want 1", prev)
			}
			if hs.Buckets[i] != 2 {
				t.Fatalf("1s bucket cumulative = %d, want 2", hs.Buckets[i])
			}
		}
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "").Inc()
	r.Counter("aa_total", "").Inc()
	r.LabelledCounter("mm_total", "", "k", "b").Inc()
	r.LabelledCounter("mm_total", "", "k", "a").Inc()
	r.Gauge("g2", "").Set(1)
	r.Gauge("g1", "").Set(2)
	s := r.Snapshot()
	var names []string
	for _, c := range s.Counters {
		names = append(names, c.Name+"/"+c.Label)
	}
	want := []string{"aa_total/", "mm_total/a", "mm_total/b", "zz_total/"}
	if strings.Join(names, " ") != strings.Join(want, " ") {
		t.Fatalf("counter order = %v, want %v", names, want)
	}
	if s.Gauges[0].Name != "g1" || s.Gauges[1].Name != "g2" {
		t.Fatalf("gauge order = %+v", s.Gauges)
	}
}

func TestPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("events_total", "events processed").Add(42)
	r.LabelledCounter("drops_total", "drops by cause", "cause", "collision").Add(7)
	r.LabelledCounter("drops_total", "", "cause", "channel").Add(1)
	r.Gauge("depth", "queue depth").Set(13)
	r.Histogram("wall_seconds", "unit wall time").Observe(0.5)
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP events_total events processed\n",
		"# TYPE events_total counter\n",
		"events_total 42\n",
		"# TYPE drops_total counter\n",
		`drops_total{cause="collision"} 7` + "\n",
		`drops_total{cause="channel"} 1` + "\n",
		"# TYPE depth gauge\n",
		"depth 13\n",
		"# TYPE wall_seconds histogram\n",
		`wall_seconds_bucket{le="0.001"} 0` + "\n",
		`wall_seconds_bucket{le="+Inf"} 1` + "\n",
		"wall_seconds_sum 0.5\n",
		"wall_seconds_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition misses %q:\n%s", want, out)
		}
	}
	// One TYPE line per family, even with several labelled samples.
	if got := strings.Count(out, "# TYPE drops_total counter"); got != 1 {
		t.Errorf("drops_total TYPE lines = %d, want 1", got)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "help a").Add(5)
	r.LabelledCounter("b_total", "", "k", "v").Add(2)
	r.Gauge("g", "").Set(-3)
	snap := r.Snapshot().Deterministic()
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshotJSON(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := back.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatalf("round trip changed bytes:\n%s\nvs\n%s", buf.String(), buf2.String())
	}
	if len(back.Histograms) != 0 {
		t.Fatal("deterministic snapshot carries histograms")
	}
}

func TestMergePrefersReceiver(t *testing.T) {
	run := NewRegistry()
	run.Counter("sim_events_total", "").Add(100)
	live := NewRegistry()
	live.Counter("sim_events_total", "").Add(0) // zero-valued registration
	live.Counter("http_requests_total", "").Add(9)
	merged := run.Snapshot().Merge(live.Snapshot())
	byName := map[string]uint64{}
	for _, c := range merged.Counters {
		byName[c.Name] = c.Value
	}
	if byName["sim_events_total"] != 100 {
		t.Fatalf("merge let the live zero shadow the run value: %v", byName)
	}
	if byName["http_requests_total"] != 9 {
		t.Fatalf("merge dropped the live-only family: %v", byName)
	}
}

func TestEnabledDefaultOff(t *testing.T) {
	if Enabled() {
		t.Fatal("metrics enabled by default")
	}
}

// TestConcurrentSnapshot hammers Snapshot while counters, gauges and
// histograms record on other goroutines — the race-detector contract
// behind sweepd scraping a live process.
func TestConcurrentSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c.Inc()
				g.SetMax(int64(c.Value()))
				h.Observe(0.001)
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		s := r.Snapshot()
		var buf bytes.Buffer
		if err := s.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	s := r.Snapshot()
	if s.Counters[0].Value == 0 {
		t.Fatal("no increments observed")
	}
	if s.Histograms[0].Count != s.Counters[0].Value {
		t.Fatalf("histogram count %d != counter %d", s.Histograms[0].Count, s.Counters[0].Value)
	}
}
