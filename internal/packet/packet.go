// Package packet defines the wire formats exchanged by the Cooperative-ARQ
// protocol: DATA frames from the access point, HELLO beacons carrying
// cooperator lists, REQUEST frames for missing packets, and RESPONSE frames
// from cooperators. Frames encode to real bytes (big-endian, CRC-32
// trailer) so that header overhead and airtime are accounted for honestly
// in the MAC model.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// NodeID identifies a station (AP or vehicle) in the network.
type NodeID uint16

// Broadcast is the all-stations destination address.
const Broadcast NodeID = 0xFFFF

// String implements fmt.Stringer.
func (id NodeID) String() string {
	if id == Broadcast {
		return "bcast"
	}
	return fmt.Sprintf("n%d", uint16(id))
}

// Type discriminates the protocol frames.
type Type uint8

// Frame types. Values start at 1 so the zero value is invalid on the wire.
const (
	TypeData     Type = iota + 1 // AP -> car numbered data packet
	TypeHello                    // car beacon: presence + cooperator list
	TypeRequest                  // car -> cooperators: missing sequence(s)
	TypeResponse                 // cooperator -> car: buffered data packet
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeData:
		return "DATA"
	case TypeHello:
		return "HELLO"
	case TypeRequest:
		return "REQUEST"
	case TypeResponse:
		return "RESPONSE"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Wire layout constants.
const (
	version = 1

	// headerLen is version(1) + type(1) + src(2) + dst(2) + flow(2) +
	// seq(4) + listLen(2) + payloadLen(2).
	headerLen  = 16
	trailerLen = 4 // CRC-32

	// Overhead is the fixed per-frame byte cost (header + CRC trailer).
	Overhead = headerLen + trailerLen

	// MaxPayload bounds DATA/RESPONSE payloads; generous for the 1000 B
	// payloads the paper's testbed used.
	MaxPayload = 2304

	// MaxListLen bounds the cooperator and sequence lists.
	MaxListLen = 1024
)

// Errors returned by Decode.
var (
	ErrTruncated   = errors.New("packet: frame truncated")
	ErrBadVersion  = errors.New("packet: unsupported version")
	ErrBadType     = errors.New("packet: unknown frame type")
	ErrBadChecksum = errors.New("packet: CRC mismatch")
	ErrBadList     = errors.New("packet: list length out of range")
	ErrBadPayload  = errors.New("packet: payload length out of range")
)

// Frame is the in-memory representation of any protocol frame. Field use
// by type:
//
//	DATA:     Src=AP, Dst=Flow=destination car, Seq, Payload.
//	HELLO:    Src=car, Dst=Broadcast, List=cooperator IDs in cooperation order.
//	REQUEST:  Src=car, Dst=Broadcast, Flow=Src, Seqs=missing sequences
//	          (length 1 unless batched requests are enabled).
//	RESPONSE: Src=cooperator, Dst=requesting car, Flow=requesting car,
//	          Seq=recovered sequence, Payload=original data.
type Frame struct {
	Type    Type
	Src     NodeID
	Dst     NodeID
	Flow    NodeID
	Seq     uint32
	Seqs    []uint32 // REQUEST only
	List    []NodeID // HELLO only
	Payload []byte   // DATA / RESPONSE only
}

// NewData builds a DATA frame from ap to car with the given sequence number
// and payload.
func NewData(ap, car NodeID, seq uint32, payload []byte) *Frame {
	return &Frame{Type: TypeData, Src: ap, Dst: car, Flow: car, Seq: seq, Payload: payload}
}

// NewHello builds a HELLO beacon for src carrying its cooperator list.
func NewHello(src NodeID, cooperators []NodeID) *Frame {
	return &Frame{Type: TypeHello, Src: src, Dst: Broadcast, List: cooperators}
}

// NewRequest builds a REQUEST from src for the given missing sequences of
// its own flow.
func NewRequest(src NodeID, seqs []uint32) *Frame {
	return &Frame{Type: TypeRequest, Src: src, Dst: Broadcast, Flow: src, Seqs: seqs}
}

// NewResponse builds a RESPONSE from cooperator src answering dst's request
// for sequence seq with the buffered payload.
func NewResponse(src, dst NodeID, seq uint32, payload []byte) *Frame {
	return &Frame{Type: TypeResponse, Src: src, Dst: dst, Flow: dst, Seq: seq, Payload: payload}
}

// listLen returns the element count of the variable-length list section.
func (f *Frame) listLen() int {
	switch f.Type {
	case TypeHello:
		return len(f.List)
	case TypeRequest:
		return len(f.Seqs)
	default:
		return 0
	}
}

// WireSize returns the encoded length in bytes without encoding. The MAC
// uses it to compute airtime.
func (f *Frame) WireSize() int {
	n := headerLen + trailerLen + len(f.Payload)
	switch f.Type {
	case TypeHello:
		n += 2 * len(f.List)
	case TypeRequest:
		n += 4 * len(f.Seqs)
	}
	return n
}

// Encode serialises the frame. It returns an error if list or payload
// bounds are exceeded or the type is unknown.
func (f *Frame) Encode() ([]byte, error) {
	return f.AppendEncode(nil)
}

// AppendEncode serialises the frame into dst (which may be nil or an
// emptied reusable buffer) and returns the extended slice. The MAC's wire
// buffers recycle through it, so steady-state transmissions encode without
// allocating.
func (f *Frame) AppendEncode(dst []byte) ([]byte, error) {
	switch f.Type {
	case TypeData, TypeHello, TypeRequest, TypeResponse:
	default:
		return dst, fmt.Errorf("%w: %d", ErrBadType, f.Type)
	}
	if f.listLen() > MaxListLen {
		return dst, fmt.Errorf("%w: %d elements", ErrBadList, f.listLen())
	}
	if len(f.Payload) > MaxPayload {
		return dst, fmt.Errorf("%w: %d bytes", ErrBadPayload, len(f.Payload))
	}
	buf := dst
	if buf == nil {
		buf = make([]byte, 0, f.WireSize())
	}
	start := len(buf)
	buf = append(buf, version, byte(f.Type))
	buf = binary.BigEndian.AppendUint16(buf, uint16(f.Src))
	buf = binary.BigEndian.AppendUint16(buf, uint16(f.Dst))
	buf = binary.BigEndian.AppendUint16(buf, uint16(f.Flow))
	buf = binary.BigEndian.AppendUint32(buf, f.Seq)
	buf = binary.BigEndian.AppendUint16(buf, uint16(f.listLen()))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(f.Payload)))
	switch f.Type {
	case TypeHello:
		for _, id := range f.List {
			buf = binary.BigEndian.AppendUint16(buf, uint16(id))
		}
	case TypeRequest:
		for _, s := range f.Seqs {
			buf = binary.BigEndian.AppendUint32(buf, s)
		}
	}
	buf = append(buf, f.Payload...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:]))
	return buf, nil
}

// Decode parses a frame from wire bytes, validating structure and CRC.
func Decode(b []byte) (*Frame, error) {
	if len(b) < headerLen+trailerLen {
		return nil, ErrTruncated
	}
	body, trailer := b[:len(b)-trailerLen], b[len(b)-trailerLen:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(trailer) {
		return nil, ErrBadChecksum
	}
	if body[0] != version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, body[0])
	}
	f := &Frame{
		Type: Type(body[1]),
		Src:  NodeID(binary.BigEndian.Uint16(body[2:4])),
		Dst:  NodeID(binary.BigEndian.Uint16(body[4:6])),
		Flow: NodeID(binary.BigEndian.Uint16(body[6:8])),
		Seq:  binary.BigEndian.Uint32(body[8:12]),
	}
	listLen := int(binary.BigEndian.Uint16(body[12:14]))
	payloadLen := int(binary.BigEndian.Uint16(body[14:16]))
	if listLen > MaxListLen {
		return nil, fmt.Errorf("%w: %d elements", ErrBadList, listLen)
	}
	if payloadLen > MaxPayload {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadPayload, payloadLen)
	}
	rest := body[headerLen:]
	switch f.Type {
	case TypeData, TypeResponse:
		if listLen != 0 {
			return nil, fmt.Errorf("%w: unexpected list on %v", ErrBadList, f.Type)
		}
	case TypeHello:
		if len(rest) < 2*listLen {
			return nil, ErrTruncated
		}
		if listLen > 0 {
			f.List = make([]NodeID, listLen)
			for i := range f.List {
				f.List[i] = NodeID(binary.BigEndian.Uint16(rest[2*i:]))
			}
		}
		rest = rest[2*listLen:]
	case TypeRequest:
		if len(rest) < 4*listLen {
			return nil, ErrTruncated
		}
		if listLen > 0 {
			f.Seqs = make([]uint32, listLen)
			for i := range f.Seqs {
				f.Seqs[i] = binary.BigEndian.Uint32(rest[4*i:])
			}
		}
		rest = rest[4*listLen:]
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadType, uint8(f.Type))
	}
	if len(rest) != payloadLen {
		return nil, ErrTruncated
	}
	if payloadLen > 0 {
		f.Payload = make([]byte, payloadLen)
		copy(f.Payload, rest)
	}
	return f, nil
}

// String implements fmt.Stringer for logging and traces.
func (f *Frame) String() string {
	switch f.Type {
	case TypeData:
		return fmt.Sprintf("DATA %v->%v seq=%d len=%d", f.Src, f.Dst, f.Seq, len(f.Payload))
	case TypeHello:
		return fmt.Sprintf("HELLO %v coop=%v", f.Src, f.List)
	case TypeRequest:
		return fmt.Sprintf("REQUEST %v seqs=%v", f.Src, f.Seqs)
	case TypeResponse:
		return fmt.Sprintf("RESPONSE %v->%v seq=%d len=%d", f.Src, f.Dst, f.Seq, len(f.Payload))
	default:
		return fmt.Sprintf("Frame(type=%d)", uint8(f.Type))
	}
}
