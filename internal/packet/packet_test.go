package packet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestDataRoundTrip(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAB}, 1000)
	f := NewData(1, 2, 42, payload)
	b, err := f.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if len(b) != f.WireSize() {
		t.Fatalf("encoded %d bytes, WireSize says %d", len(b), f.WireSize())
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(f, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", f, got)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	f := NewHello(3, []NodeID{1, 2, 7})
	b, err := f.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(f, got) {
		t.Fatalf("round trip mismatch: %+v vs %+v", f, got)
	}
	if got.Dst != Broadcast {
		t.Fatalf("HELLO Dst = %v, want broadcast", got.Dst)
	}
}

func TestHelloEmptyCooperatorList(t *testing.T) {
	f := NewHello(3, nil)
	b, err := f.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got.List) != 0 {
		t.Fatalf("List = %v, want empty", got.List)
	}
}

func TestRequestRoundTrip(t *testing.T) {
	f := NewRequest(5, []uint32{10, 20, 4000000000})
	b, err := f.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(f, got) {
		t.Fatalf("round trip mismatch: %+v vs %+v", f, got)
	}
	if got.Flow != got.Src {
		t.Fatalf("REQUEST Flow = %v, want Src %v", got.Flow, got.Src)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	f := NewResponse(2, 1, 99, []byte("recovered data"))
	b, err := f.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(f, got) {
		t.Fatalf("round trip mismatch: %+v vs %+v", f, got)
	}
}

func TestDecodeErrors(t *testing.T) {
	valid, err := NewData(1, 2, 1, []byte("x")).Encode()
	if err != nil {
		t.Fatal(err)
	}

	t.Run("truncated", func(t *testing.T) {
		if _, err := Decode(valid[:10]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("err = %v, want ErrTruncated", err)
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
			t.Fatalf("err = %v, want ErrTruncated", err)
		}
	})
	t.Run("corrupted body", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		b[5] ^= 0xFF
		if _, err := Decode(b); !errors.Is(err, ErrBadChecksum) {
			t.Fatalf("err = %v, want ErrBadChecksum", err)
		}
	})
	t.Run("corrupted trailer", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		b[len(b)-1] ^= 0xFF
		if _, err := Decode(b); !errors.Is(err, ErrBadChecksum) {
			t.Fatalf("err = %v, want ErrBadChecksum", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		f := NewData(1, 2, 1, nil)
		b, err := f.Encode()
		if err != nil {
			t.Fatal(err)
		}
		b[0] = 9
		// Re-CRC so the version check is what fails.
		b = recrc(b)
		if _, err := Decode(b); !errors.Is(err, ErrBadVersion) {
			t.Fatalf("err = %v, want ErrBadVersion", err)
		}
	})
	t.Run("bad type", func(t *testing.T) {
		b, err := NewData(1, 2, 1, nil).Encode()
		if err != nil {
			t.Fatal(err)
		}
		b[1] = 200
		b = recrc(b)
		if _, err := Decode(b); !errors.Is(err, ErrBadType) {
			t.Fatalf("err = %v, want ErrBadType", err)
		}
	})
	t.Run("truncated list", func(t *testing.T) {
		b, err := NewHello(1, []NodeID{2, 3}).Encode()
		if err != nil {
			t.Fatal(err)
		}
		// Claim 3 cooperators but carry 2.
		b[13] = 3
		b = recrc(b)
		if _, err := Decode(b); !errors.Is(err, ErrTruncated) {
			t.Fatalf("err = %v, want ErrTruncated", err)
		}
	})
	t.Run("list on DATA", func(t *testing.T) {
		b, err := NewData(1, 2, 1, nil).Encode()
		if err != nil {
			t.Fatal(err)
		}
		b[13] = 1
		b = recrc(b)
		if _, err := Decode(b); !errors.Is(err, ErrBadList) {
			t.Fatalf("err = %v, want ErrBadList", err)
		}
	})
	t.Run("payload length mismatch", func(t *testing.T) {
		b, err := NewData(1, 2, 1, []byte("abc")).Encode()
		if err != nil {
			t.Fatal(err)
		}
		b[15] = 2 // claim 2 bytes, carry 3
		b = recrc(b)
		if _, err := Decode(b); !errors.Is(err, ErrTruncated) {
			t.Fatalf("err = %v, want ErrTruncated", err)
		}
	})
}

// recrc recomputes the trailer CRC after a deliberate mutation so the test
// exercises the structural validation rather than the checksum.
func recrc(b []byte) []byte {
	body := b[:len(b)-trailerLen]
	out := append([]byte(nil), body...)
	return binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(body))
}

func TestEncodeValidation(t *testing.T) {
	t.Run("oversize payload", func(t *testing.T) {
		f := NewData(1, 2, 1, make([]byte, MaxPayload+1))
		if _, err := f.Encode(); !errors.Is(err, ErrBadPayload) {
			t.Fatalf("err = %v, want ErrBadPayload", err)
		}
	})
	t.Run("max payload ok", func(t *testing.T) {
		f := NewData(1, 2, 1, make([]byte, MaxPayload))
		if _, err := f.Encode(); err != nil {
			t.Fatalf("max payload rejected: %v", err)
		}
	})
	t.Run("oversize list", func(t *testing.T) {
		f := NewRequest(1, make([]uint32, MaxListLen+1))
		if _, err := f.Encode(); !errors.Is(err, ErrBadList) {
			t.Fatalf("err = %v, want ErrBadList", err)
		}
	})
	t.Run("zero type", func(t *testing.T) {
		f := &Frame{}
		if _, err := f.Encode(); !errors.Is(err, ErrBadType) {
			t.Fatalf("err = %v, want ErrBadType", err)
		}
	})
}

func TestWireSizeMatchesEncodedLen(t *testing.T) {
	frames := []*Frame{
		NewData(1, 2, 7, make([]byte, 123)),
		NewHello(4, []NodeID{1, 2, 3, 4, 5}),
		NewRequest(9, []uint32{1, 2, 3}),
		NewResponse(2, 3, 11, make([]byte, 1000)),
	}
	for _, f := range frames {
		b, err := f.Encode()
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if len(b) != f.WireSize() {
			t.Fatalf("%v: len=%d WireSize=%d", f, len(b), f.WireSize())
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Property: any well-formed frame round-trips Encode→Decode exactly.
	check := func(kind uint8, src, dst uint16, seq uint32, listRaw []uint16, payload []byte) bool {
		f := &Frame{
			Type: Type(kind%4) + 1,
			Src:  NodeID(src),
			Dst:  NodeID(dst),
			Seq:  seq,
		}
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		if len(listRaw) > MaxListLen {
			listRaw = listRaw[:MaxListLen]
		}
		switch f.Type {
		case TypeHello:
			for _, v := range listRaw {
				f.List = append(f.List, NodeID(v))
			}
		case TypeRequest:
			for _, v := range listRaw {
				f.Seqs = append(f.Seqs, uint32(v))
			}
		case TypeData, TypeResponse:
			if len(payload) > 0 {
				f.Payload = append([]byte(nil), payload...)
			}
			f.Flow = f.Dst
		}
		b, err := f.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(b)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(f, got)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestBitFlipDetectedProperty(t *testing.T) {
	// Property: flipping any single bit of an encoded frame is detected
	// (CRC or structural validation) — Decode must never silently return
	// a different frame.
	base, err := NewData(7, 8, 1234, []byte("the quick brown fox")).Encode()
	if err != nil {
		t.Fatal(err)
	}
	for bit := 0; bit < len(base)*8; bit++ {
		b := append([]byte(nil), base...)
		b[bit/8] ^= 1 << (bit % 8)
		got, err := Decode(b)
		if err != nil {
			continue
		}
		orig, _ := Decode(base)
		if !reflect.DeepEqual(got, orig) {
			t.Fatalf("bit flip %d produced a different valid frame", bit)
		}
	}
}

func TestNodeIDString(t *testing.T) {
	if Broadcast.String() != "bcast" {
		t.Fatalf("Broadcast.String() = %q", Broadcast.String())
	}
	if NodeID(3).String() != "n3" {
		t.Fatalf("NodeID(3).String() = %q", NodeID(3).String())
	}
}

func TestTypeString(t *testing.T) {
	for _, tc := range []struct {
		ty   Type
		want string
	}{
		{TypeData, "DATA"}, {TypeHello, "HELLO"},
		{TypeRequest, "REQUEST"}, {TypeResponse, "RESPONSE"},
		{Type(77), "Type(77)"},
	} {
		if got := tc.ty.String(); got != tc.want {
			t.Fatalf("Type.String() = %q, want %q", got, tc.want)
		}
	}
}

func TestFrameString(t *testing.T) {
	cases := []struct {
		f    *Frame
		want string
	}{
		{NewData(1, 2, 3, []byte("ab")), "DATA"},
		{NewHello(1, nil), "HELLO"},
		{NewRequest(1, []uint32{5}), "REQUEST"},
		{NewResponse(1, 2, 5, nil), "RESPONSE"},
		{&Frame{Type: Type(99)}, "Frame(type=99)"},
	}
	for _, tc := range cases {
		if got := tc.f.String(); !strings.Contains(got, tc.want) {
			t.Fatalf("String() = %q, want substring %q", got, tc.want)
		}
	}
}

func BenchmarkEncodeData(b *testing.B) {
	f := NewData(1, 2, 42, make([]byte, 1000))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := f.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeData(b *testing.B) {
	buf, err := NewData(1, 2, 42, make([]byte, 1000)).Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
