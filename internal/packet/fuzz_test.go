package packet

import (
	"reflect"
	"testing"
)

// FuzzDecode checks that Decode never panics on arbitrary bytes and that
// anything it accepts re-encodes to the identical wire form (a canonical
// codec).
func FuzzDecode(f *testing.F) {
	seed := [][]byte{
		nil,
		{0x01},
		make([]byte, Overhead),
	}
	if b, err := NewData(1, 2, 7, []byte("payload")).Encode(); err == nil {
		seed = append(seed, b)
	}
	if b, err := NewHello(3, []NodeID{1, 2}).Encode(); err == nil {
		seed = append(seed, b)
	}
	if b, err := NewRequest(4, []uint32{9, 10}).Encode(); err == nil {
		seed = append(seed, b)
	}
	if b, err := NewResponse(5, 6, 11, []byte("x")).Encode(); err == nil {
		seed = append(seed, b)
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := Decode(data)
		if err != nil {
			return
		}
		re, err := frame.Encode()
		if err != nil {
			t.Fatalf("decoded frame does not re-encode: %v (%+v)", err, frame)
		}
		if !reflect.DeepEqual(re, data) {
			t.Fatalf("codec not canonical:\n in: %x\nout: %x", data, re)
		}
		again, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(frame, again) {
			t.Fatalf("re-decode mismatch: %+v vs %+v", frame, again)
		}
	})
}
