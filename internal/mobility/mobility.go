// Package mobility provides the vehicle movement models behind the
// reproduced experiments: arc-length path followers with position-dependent
// speed (corners), and platoon followers with per-driver gap behaviour —
// enough to recreate the paper's urban loop, its corner-C car-bunching
// anomaly, and highway drive-thru passes.
package mobility

import (
	"fmt"
	"math"
	"time"

	"repro/internal/geom"
)

// Model reports a position at a virtual time.
type Model interface {
	Position(now time.Duration) geom.Point
}

// Func adapts a function to the Model interface.
type Func func(now time.Duration) geom.Point

// Position implements Model.
func (f Func) Position(now time.Duration) geom.Point { return f(now) }

// Static returns a model pinned at p — access points use this.
func Static(p geom.Point) Model {
	return Func(func(time.Duration) geom.Point { return p })
}

// SpeedZone scales the base speed within an arc-length range of the path.
// Zones model corners and congested stretches.
type SpeedZone struct {
	FromArc float64 // start of the zone, metres along the path
	ToArc   float64 // end of the zone, metres along the path
	Factor  float64 // speed multiplier in (0, +inf), e.g. 0.5 for a corner
}

// PathFollower moves along a polyline at a base speed modulated by speed
// zones. For closed paths (Loop=true) the arc position wraps; otherwise
// the follower stops at the end.
//
// The arc-vs-time relationship is precomputed by numeric integration at
// construction, so Position lookups are O(log n).
type PathFollower struct {
	path     *geom.Polyline
	loop     bool
	startArc float64
	// lapTimes[i] is the time to reach arc sample i from arc 0; samples
	// are spaced sampleStep metres apart, covering one full path length.
	lapTimes   []float64
	sampleStep float64
	lapTime    float64 // time for one full traversal
}

// FollowerConfig configures NewPathFollower.
type FollowerConfig struct {
	Path     *geom.Polyline
	Loop     bool
	StartArc float64 // initial position, metres along the path
	SpeedMPS float64 // base speed, metres/second
	Zones    []SpeedZone
}

// NewPathFollower validates cfg and precomputes the time parameterisation.
func NewPathFollower(cfg FollowerConfig) (*PathFollower, error) {
	if cfg.Path == nil {
		return nil, fmt.Errorf("mobility: nil path")
	}
	if cfg.SpeedMPS <= 0 {
		return nil, fmt.Errorf("mobility: non-positive speed %v", cfg.SpeedMPS)
	}
	for i, z := range cfg.Zones {
		if z.Factor <= 0 {
			return nil, fmt.Errorf("mobility: zone %d has non-positive factor %v", i, z.Factor)
		}
		if z.ToArc <= z.FromArc {
			return nil, fmt.Errorf("mobility: zone %d has empty arc range [%v, %v)", i, z.FromArc, z.ToArc)
		}
	}
	total := cfg.Path.Length()
	// Normalise the start position into [0, total): callers may pass an
	// arc several laps ahead (or a negative offset behind the origin) on
	// looped paths.
	startArc := math.Mod(cfg.StartArc, total)
	if startArc < 0 {
		startArc += total
	}
	const step = 0.5 // metres per integration sample
	n := int(math.Ceil(total/step)) + 1
	times := make([]float64, n)
	for i := 1; i < n; i++ {
		arc := float64(i-1) * step
		ds := step
		if arc+ds > total {
			ds = total - arc
		}
		v := cfg.SpeedMPS * zoneFactor(cfg.Zones, arc+ds/2)
		times[i] = times[i-1] + ds/v
	}
	return &PathFollower{
		path:       cfg.Path,
		loop:       cfg.Loop,
		startArc:   startArc,
		lapTimes:   times,
		sampleStep: step,
		lapTime:    times[n-1],
	}, nil
}

// MustPathFollower is NewPathFollower but panics on error.
func MustPathFollower(cfg FollowerConfig) *PathFollower {
	f, err := NewPathFollower(cfg)
	if err != nil {
		panic(err)
	}
	return f
}

func zoneFactor(zones []SpeedZone, arc float64) float64 {
	f := 1.0
	for _, z := range zones {
		if arc >= z.FromArc && arc < z.ToArc {
			f *= z.Factor
		}
	}
	return f
}

// LapTime returns the time to traverse the full path once.
func (f *PathFollower) LapTime() time.Duration {
	return time.Duration(f.lapTime * float64(time.Second))
}

// PathLength returns the path's total arc length.
func (f *PathFollower) PathLength() float64 { return f.path.Length() }

// ArcAt returns the arc-length position at time now, measured from the
// path start (not from StartArc) and NOT wrapped: it increases without
// bound on looped paths, so callers can difference it for lap counting.
func (f *PathFollower) ArcAt(now time.Duration) float64 {
	t := now.Seconds()
	// Offset by the time needed to reach startArc from arc 0.
	t += f.timeToArc(f.startArc)
	laps := 0.0
	if f.loop {
		laps = math.Floor(t / f.lapTime)
		t -= laps * f.lapTime
	} else if t >= f.lapTime {
		return f.path.Length()
	}
	return laps*f.path.Length() + f.arcAtLapTime(t)
}

// timeToArc inverts the precomputed table: seconds to reach the given arc
// from arc 0 within one lap.
func (f *PathFollower) timeToArc(arc float64) float64 {
	if arc <= 0 {
		return 0
	}
	total := f.path.Length()
	if arc >= total {
		return f.lapTime
	}
	i := int(arc / f.sampleStep)
	if i >= len(f.lapTimes)-1 {
		return f.lapTime
	}
	lo := float64(i) * f.sampleStep
	hi := lo + f.sampleStep
	if hi > total {
		hi = total
	}
	frac := 0.0
	if hi > lo {
		frac = (arc - lo) / (hi - lo)
	}
	return f.lapTimes[i] + frac*(f.lapTimes[i+1]-f.lapTimes[i])
}

// arcAtLapTime converts an in-lap time to an in-lap arc by binary search on
// the cumulative-time table.
func (f *PathFollower) arcAtLapTime(t float64) float64 {
	if t <= 0 {
		return 0
	}
	if t >= f.lapTime {
		return f.path.Length()
	}
	lo, hi := 0, len(f.lapTimes)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if f.lapTimes[mid] <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	t0, t1 := f.lapTimes[lo], f.lapTimes[hi]
	arc0 := float64(lo) * f.sampleStep
	arc1 := float64(hi) * f.sampleStep
	if arc1 > f.path.Length() {
		arc1 = f.path.Length()
	}
	if t1 == t0 {
		return arc0
	}
	return arc0 + (arc1-arc0)*(t-t0)/(t1-t0)
}

// Position implements Model.
func (f *PathFollower) Position(now time.Duration) geom.Point {
	arc := f.ArcAt(now)
	if f.loop {
		return f.path.AtLooped(arc)
	}
	return f.path.At(arc)
}
