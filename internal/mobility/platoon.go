package mobility

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/geom"
)

// DriverProfile captures the per-driver behaviour the paper observed: each
// car keeps a nominal headway to its predecessor, with per-round variation
// and a slow wobble, and may close up or fall back in specific stretches
// of the track (the corner-C effect, which the authors attribute to the
// inexperienced driver of car 2).
type DriverProfile struct {
	// Name labels the driver in diagnostics.
	Name string
	// HeadwayM is the nominal gap to the predecessor, metres.
	HeadwayM float64
	// HeadwayJitterM scales the per-round gaussian variation of the gap.
	HeadwayJitterM float64
	// WobbleM is the amplitude of the slow in-round gap oscillation.
	WobbleM float64
	// WobblePeriod is the oscillation period.
	WobblePeriod time.Duration
	// Squeezes modulate this car's gap while the platoon leader is
	// within given arc ranges of the track.
	Squeezes []GapSqueeze
}

// GapSqueeze scales a follower's gap while the leader's (unwrapped, in-lap)
// arc position lies in [FromArc, ToArc).
type GapSqueeze struct {
	FromArc float64
	ToArc   float64
	Factor  float64 // e.g. 0.3: the car closes to 30% of its nominal gap
}

// Platoon positions a leader plus followers along a shared path. The
// leader is a PathFollower; follower i trails follower i-1 by its profile's
// gap. Gaps transition smoothly because the wobble and squeeze terms are
// continuous in time.
type Platoon struct {
	leader   *PathFollower
	profiles []DriverProfile
	// roundJitter[i] is the fixed per-round gap offset of car i.
	roundJitter []float64
	// wobblePhase[i] randomises each car's oscillation phase.
	wobblePhase []float64
}

// NewPlatoon builds a platoon of len(profiles) cars. profiles[0] is the
// leader (its gap fields are ignored). rng supplies the per-round draws;
// pass a round-specific stream so each experiment round gets fresh driver
// behaviour.
func NewPlatoon(leader *PathFollower, profiles []DriverProfile, rng *rand.Rand) (*Platoon, error) {
	if leader == nil {
		return nil, fmt.Errorf("mobility: nil leader")
	}
	if len(profiles) == 0 {
		return nil, fmt.Errorf("mobility: empty platoon")
	}
	for i, p := range profiles[1:] {
		if p.HeadwayM <= 0 {
			return nil, fmt.Errorf("mobility: car %d has non-positive headway %v", i+1, p.HeadwayM)
		}
		for _, s := range p.Squeezes {
			if s.Factor <= 0 {
				return nil, fmt.Errorf("mobility: car %d squeeze factor %v", i+1, s.Factor)
			}
		}
	}
	pl := &Platoon{
		leader:      leader,
		profiles:    profiles,
		roundJitter: make([]float64, len(profiles)),
		wobblePhase: make([]float64, len(profiles)),
	}
	for i := range profiles {
		if i == 0 {
			continue
		}
		pl.roundJitter[i] = rng.NormFloat64() * profiles[i].HeadwayJitterM
		pl.wobblePhase[i] = rng.Float64() * 2 * math.Pi
	}
	return pl, nil
}

// Size returns the number of cars.
func (p *Platoon) Size() int { return len(p.profiles) }

// Leader returns the leader's path follower.
func (p *Platoon) Leader() *PathFollower { return p.leader }

// gapAt returns car i's instantaneous gap behind car i-1.
func (p *Platoon) gapAt(i int, now time.Duration) float64 {
	prof := p.profiles[i]
	gap := prof.HeadwayM + p.roundJitter[i]
	if prof.WobbleM > 0 && prof.WobblePeriod > 0 {
		omega := 2 * math.Pi / prof.WobblePeriod.Seconds()
		gap += prof.WobbleM * math.Sin(omega*now.Seconds()+p.wobblePhase[i])
	}
	leaderArc := math.Mod(p.leader.ArcAt(now), p.leader.PathLength())
	for _, s := range prof.Squeezes {
		if leaderArc >= s.FromArc && leaderArc < s.ToArc {
			gap *= s.Factor
		}
	}
	// Never allow a non-positive or reversed gap: cars cannot overlap.
	const minGap = 3
	if gap < minGap {
		gap = minGap
	}
	return gap
}

// ArcAt returns car i's unwrapped arc position at time now.
func (p *Platoon) ArcAt(i int, now time.Duration) float64 {
	if i < 0 || i >= len(p.profiles) {
		panic(fmt.Sprintf("mobility: car index %d out of range [0,%d)", i, len(p.profiles)))
	}
	arc := p.leader.ArcAt(now)
	for j := 1; j <= i; j++ {
		arc -= p.gapAt(j, now)
	}
	return arc
}

// Car returns the Model for car i (0 = leader).
func (p *Platoon) Car(i int) Model {
	if i < 0 || i >= len(p.profiles) {
		panic(fmt.Sprintf("mobility: car index %d out of range [0,%d)", i, len(p.profiles)))
	}
	return Func(func(now time.Duration) geom.Point {
		arc := p.ArcAt(i, now)
		path := p.leader.path
		if p.leader.loop {
			return path.AtLooped(arc)
		}
		if arc < 0 {
			arc = 0
		}
		return path.At(arc)
	})
}

// Gap returns the instantaneous gap in metres between car i and its
// predecessor (i >= 1), for diagnostics and tests.
func (p *Platoon) Gap(i int, now time.Duration) float64 {
	if i <= 0 || i >= len(p.profiles) {
		panic(fmt.Sprintf("mobility: gap index %d out of range [1,%d)", i, len(p.profiles)))
	}
	return p.gapAt(i, now)
}

// Spacing returns the distance between consecutive cars' positions at now,
// for diagnostics.
func (p *Platoon) Spacing(now time.Duration) []float64 {
	out := make([]float64, 0, len(p.profiles)-1)
	for i := 1; i < len(p.profiles); i++ {
		a := p.Car(i - 1).Position(now)
		b := p.Car(i).Position(now)
		out = append(out, a.Dist(b))
	}
	return out
}

var _ Model = (*PathFollower)(nil)

// StraightHighway returns an open straight path of the given length along
// the X axis — the drive-thru scenario of reference [1] in the paper.
func StraightHighway(lengthM float64) *geom.Polyline {
	return geom.MustPolyline(geom.Point{X: 0}, geom.Point{X: lengthM})
}
