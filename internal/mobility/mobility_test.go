package mobility

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/geom"
	"repro/internal/sim"
)

func square(side float64) *geom.Polyline {
	return geom.MustPolyline(
		geom.Point{X: 0, Y: 0}, geom.Point{X: side, Y: 0},
		geom.Point{X: side, Y: side}, geom.Point{X: 0, Y: side}, geom.Point{X: 0, Y: 0},
	)
}

func TestStatic(t *testing.T) {
	m := Static(geom.Point{X: 5, Y: 6})
	if got := m.Position(0); got != (geom.Point{X: 5, Y: 6}) {
		t.Fatalf("Position = %v", got)
	}
	if got := m.Position(time.Hour); got != (geom.Point{X: 5, Y: 6}) {
		t.Fatalf("Position moved: %v", got)
	}
}

func TestNewPathFollowerValidation(t *testing.T) {
	path := square(100)
	if _, err := NewPathFollower(FollowerConfig{Path: nil, SpeedMPS: 5}); err == nil {
		t.Fatal("nil path accepted")
	}
	if _, err := NewPathFollower(FollowerConfig{Path: path, SpeedMPS: 0}); err == nil {
		t.Fatal("zero speed accepted")
	}
	if _, err := NewPathFollower(FollowerConfig{
		Path: path, SpeedMPS: 5, Zones: []SpeedZone{{0, 10, 0}},
	}); err == nil {
		t.Fatal("zero zone factor accepted")
	}
	if _, err := NewPathFollower(FollowerConfig{
		Path: path, SpeedMPS: 5, Zones: []SpeedZone{{10, 10, 1}},
	}); err == nil {
		t.Fatal("empty zone range accepted")
	}
}

// TestPathFollowerDegeneratePaths covers the degenerate geometry edge
// cases: paths that cannot be built (zero points, one point, coincident
// points) must be rejected at the polyline layer, and NewPathFollower
// must never be constructible over them.
func TestPathFollowerDegeneratePaths(t *testing.T) {
	if _, err := geom.NewPolyline(); err == nil {
		t.Fatal("empty polyline accepted")
	}
	if _, err := geom.NewPolyline(geom.Point{X: 1, Y: 2}); err == nil {
		t.Fatal("single-point polyline accepted")
	}
	// All-coincident points: a polyline with zero total length.
	if _, err := geom.NewPolyline(geom.Point{X: 3, Y: 3}, geom.Point{X: 3, Y: 3}); err == nil {
		t.Fatal("zero-length polyline accepted")
	}
}

// TestPathFollowerOverlappingZones checks that overlapping SpeedZones
// compose multiplicatively: a follower inside both a 0.5x and a 0.5x zone
// travels at a quarter speed.
func TestPathFollowerOverlappingZones(t *testing.T) {
	path := StraightHighway(100)
	f := MustPathFollower(FollowerConfig{
		Path:     path,
		SpeedMPS: 10,
		Zones: []SpeedZone{
			{FromArc: 0, ToArc: 100, Factor: 0.5},
			{FromArc: 40, ToArc: 60, Factor: 0.5},
		},
	})
	// 0..40 m at 5 m/s (8 s) + 40..60 m at 2.5 m/s (8 s) + 60..100 m at
	// 5 m/s (8 s) = 24 s for the full traversal.
	if got := f.LapTime().Seconds(); math.Abs(got-24) > 0.1 {
		t.Fatalf("LapTime = %vs, want ~24s", got)
	}
	// Mid-overlap position: 8 s to reach 40 m, then 4 s at 2.5 m/s = 50 m.
	p := f.Position(12 * time.Second)
	if math.Abs(p.X-50) > 0.5 {
		t.Fatalf("Position(12s).X = %v, want ~50", p.X)
	}
}

// TestPathFollowerStartArcBeyondLap checks that StartArc wraps on looped
// paths: starting 1.25 laps in is the same as starting 0.25 laps in, and
// negative offsets wrap backwards.
func TestPathFollowerStartArcBeyondLap(t *testing.T) {
	path := square(100) // 400 m loop
	base := MustPathFollower(FollowerConfig{Path: path, Loop: true, SpeedMPS: 10, StartArc: 100})
	ahead := MustPathFollower(FollowerConfig{Path: path, Loop: true, SpeedMPS: 10, StartArc: 500})
	twoAhead := MustPathFollower(FollowerConfig{Path: path, Loop: true, SpeedMPS: 10, StartArc: 900})
	negative := MustPathFollower(FollowerConfig{Path: path, Loop: true, SpeedMPS: 10, StartArc: -300})
	for _, at := range []time.Duration{0, 7 * time.Second, time.Minute} {
		want := base.Position(at)
		for name, f := range map[string]*PathFollower{
			"one lap ahead": ahead, "two laps ahead": twoAhead, "negative": negative,
		} {
			if got := f.Position(at); got.Dist(want) > 1e-6 {
				t.Fatalf("%s: Position(%v) = %v, want %v", name, at, got, want)
			}
		}
	}
	// The wrapped starts must actually be offset from the path origin.
	if got := base.Position(0); got.Dist(path.At(100)) > 1e-6 {
		t.Fatalf("base start = %v, want %v", got, path.At(100))
	}
}

func TestConstantSpeedStraightLine(t *testing.T) {
	path := StraightHighway(1000)
	f := MustPathFollower(FollowerConfig{Path: path, SpeedMPS: 10})
	for _, tt := range []struct {
		at   time.Duration
		want float64
	}{
		{0, 0}, {10 * time.Second, 100}, {50 * time.Second, 500},
	} {
		p := f.Position(tt.at)
		if math.Abs(p.X-tt.want) > 0.01 {
			t.Fatalf("Position(%v).X = %v, want %v", tt.at, p.X, tt.want)
		}
	}
	// Open path: stops at the end.
	end := f.Position(500 * time.Second)
	if math.Abs(end.X-1000) > 0.01 {
		t.Fatalf("follower did not stop at end: %v", end)
	}
}

func TestLapTime(t *testing.T) {
	f := MustPathFollower(FollowerConfig{Path: square(100), Loop: true, SpeedMPS: 10})
	// 400 m at 10 m/s = 40 s.
	if got := f.LapTime(); math.Abs(got.Seconds()-40) > 0.05 {
		t.Fatalf("LapTime = %v, want ~40s", got)
	}
}

func TestLoopWrapsAround(t *testing.T) {
	f := MustPathFollower(FollowerConfig{Path: square(100), Loop: true, SpeedMPS: 10})
	p0 := f.Position(0)
	p1 := f.Position(f.LapTime())
	if p0.Dist(p1) > 0.5 {
		t.Fatalf("one lap did not return to start: %v vs %v", p0, p1)
	}
	// Arc keeps increasing (unwrapped).
	a1 := f.ArcAt(f.LapTime())
	a2 := f.ArcAt(2 * f.LapTime())
	if math.Abs(a1-400) > 0.5 || math.Abs(a2-800) > 1.0 {
		t.Fatalf("unwrapped arcs = %v, %v; want ~400, ~800", a1, a2)
	}
}

func TestStartArcOffset(t *testing.T) {
	f := MustPathFollower(FollowerConfig{Path: square(100), Loop: true, SpeedMPS: 10, StartArc: 50})
	p := f.Position(0)
	want := square(100).At(50)
	if p.Dist(want) > 0.5 {
		t.Fatalf("Position(0) = %v, want %v", p, want)
	}
}

func TestSpeedZoneSlowsCorner(t *testing.T) {
	base := MustPathFollower(FollowerConfig{Path: square(100), Loop: true, SpeedMPS: 10})
	slowed := MustPathFollower(FollowerConfig{
		Path: square(100), Loop: true, SpeedMPS: 10,
		Zones: []SpeedZone{{FromArc: 90, ToArc: 110, Factor: 0.5}},
	})
	// 20 m at half speed adds 2 s to the lap.
	delta := slowed.LapTime().Seconds() - base.LapTime().Seconds()
	if math.Abs(delta-2) > 0.1 {
		t.Fatalf("zone lap-time delta = %v s, want ~2", delta)
	}
}

func TestArcMonotoneProperty(t *testing.T) {
	f := MustPathFollower(FollowerConfig{
		Path: square(120), Loop: true, SpeedMPS: 6,
		Zones: []SpeedZone{{100, 140, 0.4}, {340, 380, 0.5}},
	})
	check := func(t1, t2 uint16) bool {
		a := time.Duration(t1) * 100 * time.Millisecond
		b := time.Duration(t2) * 100 * time.Millisecond
		if a > b {
			a, b = b, a
		}
		return f.ArcAt(b)-f.ArcAt(a) >= -1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestArcSpeedBoundsProperty(t *testing.T) {
	// Arc progress over dt never exceeds maxSpeed*dt nor drops below
	// minSpeed*dt (within integration tolerance).
	f := MustPathFollower(FollowerConfig{
		Path: square(120), Loop: true, SpeedMPS: 10,
		Zones: []SpeedZone{{100, 140, 0.4}},
	})
	check := func(raw uint16) bool {
		a := time.Duration(raw) * 37 * time.Millisecond
		dt := 2 * time.Second
		ds := f.ArcAt(a+dt) - f.ArcAt(a)
		return ds <= 10*dt.Seconds()+0.5 && ds >= 4*dt.Seconds()-0.5
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func defaultProfiles() []DriverProfile {
	return []DriverProfile{
		{Name: "car1"},
		{Name: "car2", HeadwayM: 30, HeadwayJitterM: 5, WobbleM: 5, WobblePeriod: 40 * time.Second},
		{Name: "car3", HeadwayM: 30, HeadwayJitterM: 5, WobbleM: 5, WobblePeriod: 40 * time.Second},
	}
}

func TestNewPlatoonValidation(t *testing.T) {
	leader := MustPathFollower(FollowerConfig{Path: square(100), Loop: true, SpeedMPS: 5})
	rng := sim.Stream(1, "platoon")
	if _, err := NewPlatoon(nil, defaultProfiles(), rng); err == nil {
		t.Fatal("nil leader accepted")
	}
	if _, err := NewPlatoon(leader, nil, rng); err == nil {
		t.Fatal("empty platoon accepted")
	}
	bad := defaultProfiles()
	bad[1].HeadwayM = 0
	if _, err := NewPlatoon(leader, bad, rng); err == nil {
		t.Fatal("zero headway accepted")
	}
	bad2 := defaultProfiles()
	bad2[2].Squeezes = []GapSqueeze{{0, 10, -1}}
	if _, err := NewPlatoon(leader, bad2, rng); err == nil {
		t.Fatal("negative squeeze accepted")
	}
}

func TestPlatoonOrdering(t *testing.T) {
	leader := MustPathFollower(FollowerConfig{Path: square(200), Loop: true, SpeedMPS: 6, StartArc: 400})
	p, err := NewPlatoon(leader, defaultProfiles(), sim.Stream(1, "platoon"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 3 {
		t.Fatalf("Size = %d", p.Size())
	}
	for _, at := range []time.Duration{0, 10 * time.Second, time.Minute} {
		a0 := p.ArcAt(0, at)
		a1 := p.ArcAt(1, at)
		a2 := p.ArcAt(2, at)
		if !(a0 > a1 && a1 > a2) {
			t.Fatalf("at %v: arcs not ordered: %v %v %v", at, a0, a1, a2)
		}
	}
}

func TestPlatoonGapsNeverCollapse(t *testing.T) {
	leader := MustPathFollower(FollowerConfig{Path: square(200), Loop: true, SpeedMPS: 6})
	profs := defaultProfiles()
	// Extreme squeeze that would invert the gap without the floor.
	profs[2].Squeezes = []GapSqueeze{{0, 800, 0.001}}
	p, err := NewPlatoon(leader, profs, sim.Stream(2, "platoon"))
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 120; s++ {
		now := time.Duration(s) * time.Second
		if g := p.Gap(2, now); g < 3 {
			t.Fatalf("gap collapsed to %v m at %v", g, now)
		}
	}
}

func TestSqueezeReducesGapInZone(t *testing.T) {
	leader := MustPathFollower(FollowerConfig{Path: square(200), Loop: true, SpeedMPS: 10})
	profs := []DriverProfile{
		{Name: "lead"},
		{Name: "tail", HeadwayM: 40, Squeezes: []GapSqueeze{{FromArc: 300, ToArc: 500, Factor: 0.25}}},
	}
	p, err := NewPlatoon(leader, profs, sim.Stream(3, "platoon"))
	if err != nil {
		t.Fatal(err)
	}
	// Leader at arc 100 (t=10s): no squeeze.
	if g := p.Gap(1, 10*time.Second); math.Abs(g-40) > 1e-9 {
		t.Fatalf("gap outside zone = %v, want 40", g)
	}
	// Leader at arc 400 (t=40s): squeezed to 10.
	if g := p.Gap(1, 40*time.Second); math.Abs(g-10) > 1e-9 {
		t.Fatalf("gap inside zone = %v, want 10", g)
	}
}

func TestPlatoonDeterministicPerSeed(t *testing.T) {
	build := func(seed int64) *Platoon {
		leader := MustPathFollower(FollowerConfig{Path: square(200), Loop: true, SpeedMPS: 6})
		p, err := NewPlatoon(leader, defaultProfiles(), sim.Stream(seed, "round"))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b, c := build(1), build(1), build(2)
	at := 33 * time.Second
	if a.ArcAt(2, at) != b.ArcAt(2, at) {
		t.Fatal("same seed produced different platoons")
	}
	if a.ArcAt(2, at) == c.ArcAt(2, at) {
		t.Fatal("different seeds produced identical platoons")
	}
}

func TestPlatoonCarPositionsOnPath(t *testing.T) {
	path := square(200)
	leader := MustPathFollower(FollowerConfig{Path: path, Loop: true, SpeedMPS: 6})
	p, err := NewPlatoon(leader, defaultProfiles(), sim.Stream(4, "round"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.Size(); i++ {
		pos := p.Car(i).Position(25 * time.Second)
		if pos.X < -1e-6 || pos.X > 200+1e-6 || pos.Y < -1e-6 || pos.Y > 200+1e-6 {
			t.Fatalf("car %d off the square: %v", i, pos)
		}
	}
	if got := len(p.Spacing(25 * time.Second)); got != 2 {
		t.Fatalf("Spacing len = %d", got)
	}
}

func TestPlatoonIndexPanics(t *testing.T) {
	leader := MustPathFollower(FollowerConfig{Path: square(100), Loop: true, SpeedMPS: 5})
	p, err := NewPlatoon(leader, defaultProfiles(), sim.Stream(5, "x"))
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range []func(){
		func() { p.Car(-1) },
		func() { p.Car(3) },
		func() { p.ArcAt(7, 0) },
		func() { p.Gap(0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-range index did not panic")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkPlatoonPosition(b *testing.B) {
	leader := MustPathFollower(FollowerConfig{
		Path: square(200), Loop: true, SpeedMPS: 6,
		Zones: []SpeedZone{{100, 140, 0.5}},
	})
	p, err := NewPlatoon(leader, defaultProfiles(), sim.Stream(1, "bench"))
	if err != nil {
		b.Fatal(err)
	}
	car := p.Car(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		car.Position(time.Duration(i) * time.Millisecond)
	}
}
