// Package stats provides the statistics primitives used by the experiment
// analysis layer: streaming moment accumulators, binomial proportion
// estimates with confidence intervals, and simple series utilities.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator computes mean and variance online using Welford's algorithm,
// which is numerically stable for long streams. The zero value is ready to
// use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean, or 0 with no observations.
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance (n-1 denominator), or 0
// with fewer than two observations.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest observation, or 0 with no observations.
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation, or 0 with no observations.
func (a *Accumulator) Max() float64 { return a.max }

// StdErr returns the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n == 0 {
		return 0
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval for the mean.
func (a *Accumulator) CI95() float64 { return 1.96 * a.StdErr() }

// String implements fmt.Stringer for quick logging.
func (a *Accumulator) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f", a.n, a.Mean(), a.StdDev())
}

// Proportion is a streaming Bernoulli estimator: a count of successes out
// of trials, with Wilson-score confidence intervals. The zero value is
// ready to use.
type Proportion struct {
	successes int
	trials    int
}

// Add records one trial with the given outcome.
func (p *Proportion) Add(success bool) {
	p.trials++
	if success {
		p.successes++
	}
}

// AddN records n trials with k successes.
func (p *Proportion) AddN(k, n int) {
	if k < 0 || n < 0 || k > n {
		panic(fmt.Sprintf("stats: AddN(%d, %d) out of range", k, n))
	}
	p.successes += k
	p.trials += n
}

// Successes returns the success count.
func (p *Proportion) Successes() int { return p.successes }

// Trials returns the trial count.
func (p *Proportion) Trials() int { return p.trials }

// Estimate returns the maximum-likelihood estimate k/n, or 0 with no
// trials.
func (p *Proportion) Estimate() float64 {
	if p.trials == 0 {
		return 0
	}
	return float64(p.successes) / float64(p.trials)
}

// Wilson95 returns the 95% Wilson score interval (lo, hi) for the
// proportion. With no trials it returns (0, 1).
func (p *Proportion) Wilson95() (lo, hi float64) {
	if p.trials == 0 {
		return 0, 1
	}
	const z = 1.96
	n := float64(p.trials)
	phat := p.Estimate()
	denom := 1 + z*z/n
	centre := (phat + z*z/(2*n)) / denom
	half := z * math.Sqrt(phat*(1-phat)/n+z*z/(4*n*n)) / denom
	lo, hi = centre-half, centre+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (n-1 denominator), or
// 0 for fewer than two values.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Percentile returns the q-th percentile (q in [0,100]) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
// The input is not modified.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 100 {
		q = 100
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := q / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }
