package stats

import (
	"fmt"
	"strings"
)

// Series is an ordered sequence of (x, y) samples, e.g. "probability of
// reception versus packet number" — the unit of data behind each figure in
// the paper.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Append adds one sample to the series.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.X) }

// MaxAbsDiff returns the maximum absolute difference between the Y values
// of two series sampled at the same X positions. It panics if the series
// have different lengths; comparing differently shaped series is a caller
// bug.
func MaxAbsDiff(a, b *Series) float64 {
	if a.Len() != b.Len() {
		panic(fmt.Sprintf("stats: MaxAbsDiff on series of length %d and %d", a.Len(), b.Len()))
	}
	var maxDiff float64
	for i := range a.Y {
		d := a.Y[i] - b.Y[i]
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	return maxDiff
}

// MeanAbsDiff returns the mean absolute difference between the Y values of
// two equally shaped series.
func MeanAbsDiff(a, b *Series) float64 {
	if a.Len() != b.Len() {
		panic(fmt.Sprintf("stats: MeanAbsDiff on series of length %d and %d", a.Len(), b.Len()))
	}
	if a.Len() == 0 {
		return 0
	}
	var sum float64
	for i := range a.Y {
		d := a.Y[i] - b.Y[i]
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / float64(a.Len())
}

// MeanY returns the mean of the series' Y values.
func (s *Series) MeanY() float64 { return Mean(s.Y) }

// MinMaxY returns the smallest and largest Y value. An empty series
// reports (0, 0).
func (s *Series) MinMaxY() (min, max float64) {
	if len(s.Y) == 0 {
		return 0, 0
	}
	min, max = s.Y[0], s.Y[0]
	for _, y := range s.Y[1:] {
		if y < min {
			min = y
		}
		if y > max {
			max = y
		}
	}
	return min, max
}

// GnuplotData renders the series as whitespace-separated "x y" rows, the
// format the paper's figures were plotted from.
func (s *Series) GnuplotData() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", s.Name)
	for i := range s.X {
		fmt.Fprintf(&b, "%g %g\n", s.X[i], s.Y[i])
	}
	return b.String()
}

// AsciiChart renders one or more series sharing an X axis as a crude
// terminal chart (rows = Y buckets from 1.0 down to 0.0, columns = X
// samples of the first series). Each series is drawn with its own rune.
// It is intentionally simple — just enough to eyeball the figure shapes in
// CI logs.
func AsciiChart(width, height int, series ...*Series) string {
	if len(series) == 0 || series[0].Len() == 0 || width <= 0 || height <= 0 {
		return ""
	}
	marks := []rune{'*', '+', 'o', 'x', '#', '@'}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = make([]rune, width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	minX, maxX := series[0].X[0], series[0].X[0]
	for _, s := range series {
		for _, x := range s.X {
			if x < minX {
				minX = x
			}
			if x > maxX {
				maxX = x
			}
		}
	}
	spanX := maxX - minX
	if spanX == 0 {
		spanX = 1
	}
	for si, s := range series {
		mark := marks[si%len(marks)]
		for i := range s.X {
			col := int((s.X[i] - minX) / spanX * float64(width-1))
			y := s.Y[i]
			if y < 0 {
				y = 0
			}
			if y > 1 {
				y = 1
			}
			row := int((1 - y) * float64(height-1))
			grid[row][col] = mark
		}
	}
	var b strings.Builder
	for r, row := range grid {
		yVal := 1 - float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%4.2f |%s|\n", yVal, string(row))
	}
	fmt.Fprintf(&b, "      x: %.0f .. %.0f   ", minX, maxX)
	for si, s := range series {
		fmt.Fprintf(&b, "[%c] %s  ", marks[si%len(marks)], s.Name)
	}
	b.WriteByte('\n')
	return b.String()
}
