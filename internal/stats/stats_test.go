package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 || a.Variance() != 0 {
		t.Fatal("zero accumulator not zero-valued")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d, want 8", a.N())
	}
	if got := a.Mean(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	// Sample variance with n-1 denominator: sum sq dev = 32, /7.
	if got := a.Variance(); math.Abs(got-32.0/7) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", got, 32.0/7)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v, want 2/9", a.Min(), a.Max())
	}
}

func TestAccumulatorSingleValue(t *testing.T) {
	var a Accumulator
	a.Add(3.5)
	if a.Mean() != 3.5 {
		t.Fatalf("Mean = %v", a.Mean())
	}
	if a.Variance() != 0 || a.StdDev() != 0 {
		t.Fatal("variance of single observation should be 0")
	}
	if a.Min() != 3.5 || a.Max() != 3.5 {
		t.Fatal("min/max of single observation wrong")
	}
}

func TestAccumulatorMatchesBatch(t *testing.T) {
	// Property: streaming mean/stddev equals the batch formulas.
	check := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		var a Accumulator
		for i, r := range raw {
			xs[i] = float64(r) / 7
			a.Add(xs[i])
		}
		return math.Abs(a.Mean()-Mean(xs)) < 1e-9 &&
			math.Abs(a.StdDev()-StdDev(xs)) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestProportion(t *testing.T) {
	var p Proportion
	if p.Estimate() != 0 {
		t.Fatal("empty proportion estimate != 0")
	}
	lo, hi := p.Wilson95()
	if lo != 0 || hi != 1 {
		t.Fatalf("empty Wilson95 = (%v, %v), want (0, 1)", lo, hi)
	}
	for i := 0; i < 30; i++ {
		p.Add(i < 21) // 21 of 30
	}
	if got := p.Estimate(); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("Estimate = %v, want 0.7", got)
	}
	lo, hi = p.Wilson95()
	if !(lo < 0.7 && 0.7 < hi) {
		t.Fatalf("Wilson95 = (%v, %v) does not bracket 0.7", lo, hi)
	}
	if lo < 0.5 || hi > 0.9 {
		t.Fatalf("Wilson95 = (%v, %v) implausibly wide for n=30", lo, hi)
	}
}

func TestProportionAddN(t *testing.T) {
	var p Proportion
	p.AddN(3, 10)
	p.AddN(2, 10)
	if p.Successes() != 5 || p.Trials() != 20 {
		t.Fatalf("got %d/%d, want 5/20", p.Successes(), p.Trials())
	}
	if p.Estimate() != 0.25 {
		t.Fatalf("Estimate = %v, want 0.25", p.Estimate())
	}
}

func TestProportionAddNPanicsOnBadInput(t *testing.T) {
	for _, tc := range [][2]int{{-1, 5}, {3, -1}, {6, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AddN(%d,%d) did not panic", tc[0], tc[1])
				}
			}()
			var p Proportion
			p.AddN(tc[0], tc[1])
		}()
	}
}

func TestWilsonBoundsProperty(t *testing.T) {
	check := func(k, n uint8) bool {
		if n == 0 {
			return true
		}
		kk := int(k) % (int(n) + 1)
		var p Proportion
		p.AddN(kk, int(n))
		lo, hi := p.Wilson95()
		est := p.Estimate()
		return lo >= 0 && hi <= 1 && lo <= est+1e-12 && est <= hi+1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStdDevEdgeCases(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if StdDev(nil) != 0 || StdDev([]float64{5}) != 0 {
		t.Fatal("StdDev edge cases wrong")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
		{-5, 15},  // clamped
		{120, 50}, // clamped
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.q); math.Abs(got-tt.want) > 1e-9 {
			t.Fatalf("Percentile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("Percentile(nil) != 0")
	}
	if Percentile([]float64{7}, 99) != 7 {
		t.Fatal("Percentile single value wrong")
	}
	if Median(xs) != 35 {
		t.Fatal("Median wrong")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestAccumulatorGaussianSanity(t *testing.T) {
	// Feed a known normal distribution and check the estimates converge.
	rng := rand.New(rand.NewSource(1))
	var a Accumulator
	for i := 0; i < 100000; i++ {
		a.Add(rng.NormFloat64()*2 + 10)
	}
	if math.Abs(a.Mean()-10) > 0.05 {
		t.Fatalf("Mean = %v, want ~10", a.Mean())
	}
	if math.Abs(a.StdDev()-2) > 0.05 {
		t.Fatalf("StdDev = %v, want ~2", a.StdDev())
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "test"
	for i := 0; i < 5; i++ {
		s.Append(float64(i), float64(i)*0.1)
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.MeanY(); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("MeanY = %v, want 0.2", got)
	}
	data := s.GnuplotData()
	if data == "" || data[0] != '#' {
		t.Fatalf("GnuplotData header missing: %q", data)
	}
}

func TestSeriesDiffs(t *testing.T) {
	a := &Series{X: []float64{1, 2, 3}, Y: []float64{0.5, 0.6, 0.7}}
	b := &Series{X: []float64{1, 2, 3}, Y: []float64{0.5, 0.9, 0.6}}
	if got := MaxAbsDiff(a, b); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("MaxAbsDiff = %v, want 0.3", got)
	}
	if got := MeanAbsDiff(a, b); math.Abs(got-(0.0+0.3+0.1)/3) > 1e-12 {
		t.Fatalf("MeanAbsDiff = %v", got)
	}
}

func TestSeriesDiffPanicsOnShapeMismatch(t *testing.T) {
	a := &Series{X: []float64{1}, Y: []float64{1}}
	b := &Series{}
	defer func() {
		if recover() == nil {
			t.Fatal("MaxAbsDiff on mismatched series did not panic")
		}
	}()
	MaxAbsDiff(a, b)
}

func TestAsciiChart(t *testing.T) {
	s := &Series{Name: "p", X: []float64{0, 1, 2}, Y: []float64{0, 0.5, 1}}
	out := AsciiChart(20, 5, s)
	if out == "" {
		t.Fatal("empty chart")
	}
	if AsciiChart(0, 5, s) != "" || AsciiChart(20, 5) != "" {
		t.Fatal("degenerate chart inputs should yield empty string")
	}
}
