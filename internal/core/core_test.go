package core

import (
	"testing"
	"time"

	"repro/internal/mac"
	"repro/internal/packet"
	"repro/internal/sim"
)

type nullPort struct{}

func (nullPort) Send(*packet.Frame) error { return nil }

// TestFacadeBuildsWorkingNode checks the re-exported surface drives a real
// protocol node end to end.
func TestFacadeBuildsWorkingNode(t *testing.T) {
	engine := sim.New()
	node, err := NewNode(DefaultConfig(1), Deps{
		Ctx:  engine,
		Port: nullPort{},
		RNG:  sim.Stream(1, "core"),
	})
	if err != nil {
		t.Fatal(err)
	}
	node.Start()
	if node.Phase() != PhaseIdle {
		t.Fatalf("phase = %v", node.Phase())
	}
	engine.Schedule(time.Second, func() {
		node.HandleFrame(packet.NewData(100, 1, 3, []byte("x")), mac.RxMeta{})
	})
	if err := engine.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if node.Phase() != PhaseReception {
		t.Fatalf("phase = %v, want reception", node.Phase())
	}
	if !node.Have(3) {
		t.Fatal("packet not stored")
	}
}

func TestFacadeSelections(t *testing.T) {
	cands := []Candidate{
		{ID: 2, FirstHeard: time.Second, LastHeard: 5 * time.Second, RxPowerDBm: -60},
		{ID: 3, FirstHeard: 2 * time.Second, LastHeard: 9 * time.Second, RxPowerDBm: -50},
	}
	if got := (SelectAll{}).Select(cands); len(got) != 2 || got[0] != 2 {
		t.Fatalf("SelectAll = %v", got)
	}
	if got := (SelectBestK{K: 1}).Select(cands); len(got) != 1 || got[0] != 3 {
		t.Fatalf("SelectBestK = %v", got)
	}
	if got := (SelectFreshestK{K: 1}).Select(cands); len(got) != 1 || got[0] != 3 {
		t.Fatalf("SelectFreshestK = %v", got)
	}
}

func TestMustNodePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNode did not panic")
		}
	}()
	MustNode(Config{}, Deps{})
}
