// Package core is the front door to the paper's primary contribution: the
// Cooperative ARQ protocol for delay-tolerant vehicular networks. The
// implementation lives in package carq; core re-exports its public
// surface under the repository's canonical layout so downstream code can
// depend on internal/core without caring how the protocol modules are
// factored internally.
package core

import (
	"repro/internal/carq"
	"repro/internal/packet"
)

// Protocol types re-exported from the implementation package.
type (
	// Node is a vehicle running the Cooperative-ARQ protocol.
	Node = carq.Node
	// Config holds the protocol parameters.
	Config = carq.Config
	// Deps are a node's runtime dependencies.
	Deps = carq.Deps
	// Phase is the protocol operating phase.
	Phase = carq.Phase
	// Port is the node's transmit interface.
	Port = carq.Port
	// Observer receives protocol-level events.
	Observer = carq.Observer
	// NopObserver ignores all events.
	NopObserver = carq.NopObserver
	// Stats are cumulative protocol counters.
	Stats = carq.Stats
	// Candidate describes a one-hop neighbour.
	Candidate = carq.Candidate
	// Selection orders a node's cooperators.
	Selection = carq.Selection
	// SelectAll recruits every one-hop neighbour (the prototype).
	SelectAll = carq.SelectAll
	// SelectBestK recruits the K strongest neighbours.
	SelectBestK = carq.SelectBestK
	// SelectFreshestK recruits the K most recently heard neighbours.
	SelectFreshestK = carq.SelectFreshestK
)

// Protocol phases.
const (
	PhaseIdle      = carq.PhaseIdle
	PhaseReception = carq.PhaseReception
	PhaseCoopARQ   = carq.PhaseCoopARQ
)

// NewNode validates cfg and returns a stopped node; call Start to begin.
func NewNode(cfg Config, deps Deps) (*Node, error) { return carq.NewNode(cfg, deps) }

// MustNode is NewNode but panics on error.
func MustNode(cfg Config, deps Deps) *Node { return carq.MustNode(cfg, deps) }

// DefaultConfig returns the canonical protocol parameters for a node.
func DefaultConfig(id packet.NodeID) Config { return carq.DefaultConfig(id) }
