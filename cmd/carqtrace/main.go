// Command carqtrace analyses a JSONL event trace produced by carqsim,
// mirroring the paper's offline post-processing of monitor-mode captures:
// per-car reception statistics, loss breakdown by cause, protocol overhead
// and recovery summary.
//
// Usage:
//
//	carqtrace [-cars 1,2,3] trace.jsonl
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/mac"
	"repro/internal/packet"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("carqtrace: ")

	carsFlag := flag.String("cars", "1,2,3", "comma-separated car node IDs")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: carqtrace [-cars 1,2,3] trace.jsonl")
	}

	cars, err := parseCars(*carsFlag)
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	col, err := trace.ReadJSONL(f)
	if err != nil {
		log.Fatalf("parsing trace: %v", err)
	}

	counts := col.Counts()
	fmt.Printf("trace: %d tx, %d rx, %d drops, %d phase changes, %d recoveries\n\n",
		counts.Tx, counts.Rx, counts.Drops, counts.Phases, counts.Recovered)

	fmt.Println("per-car reception (own flow):")
	for _, car := range cars {
		sent := col.DataSentSeqs(car)
		direct := col.DirectRxSet(car, car)
		held := col.HeldSet(car)
		fmt.Printf("  car %v: %d sent, %d direct (%.1f%%), %d held after coop (%.1f%%)\n",
			car, len(sent), len(direct), pct(len(direct), len(sent)),
			len(held), pct(len(held), len(sent)))
	}

	fmt.Println("\ndrop breakdown:")
	byReason := make(map[mac.DropReason]int)
	for _, d := range col.Drops {
		byReason[d.Reason]++
	}
	for _, reason := range []mac.DropReason{mac.DropChannel, mac.DropCollision, mac.DropHalfDuplex, mac.DropDecode} {
		if n := byReason[reason]; n > 0 {
			fmt.Printf("  %-12s %d\n", reason, n)
		}
	}

	o := analysis.MeasureOverhead(col)
	fmt.Printf("\nprotocol overhead: hello=%d request=%d (%d B) response=%d (%d B)\n",
		o.HelloTx, o.RequestTx, o.RequestBytes, o.ResponseTx, o.ResponseBytes)

	fmt.Println("\nrecoveries by helper:")
	byHelper := make(map[packet.NodeID]int)
	for _, r := range col.Recovered {
		byHelper[r.From]++
	}
	for _, car := range cars {
		if n := byHelper[car]; n > 0 {
			fmt.Printf("  from car %v: %d packets\n", car, n)
		}
	}
}

func parseCars(s string) ([]packet.NodeID, error) {
	var out []packet.NodeID
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseUint(part, 10, 16)
		if err != nil {
			return nil, fmt.Errorf("bad car id %q: %w", part, err)
		}
		out = append(out, packet.NodeID(v))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no car ids in %q", s)
	}
	return out, nil
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
