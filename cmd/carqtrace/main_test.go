package main

import (
	"reflect"
	"testing"

	"repro/internal/packet"
)

func TestParseCars(t *testing.T) {
	tests := []struct {
		in      string
		want    []packet.NodeID
		wantErr bool
	}{
		{"1,2,3", []packet.NodeID{1, 2, 3}, false},
		{" 1 , 2 ", []packet.NodeID{1, 2}, false},
		{"7", []packet.NodeID{7}, false},
		{"1,,2", []packet.NodeID{1, 2}, false},
		{"", nil, true},
		{"x", nil, true},
		{"70000", nil, true}, // exceeds uint16
		{"-1", nil, true},
	}
	for _, tt := range tests {
		got, err := parseCars(tt.in)
		if (err != nil) != tt.wantErr {
			t.Fatalf("parseCars(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
		}
		if err == nil && !reflect.DeepEqual(got, tt.want) {
			t.Fatalf("parseCars(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestPct(t *testing.T) {
	if got := pct(1, 4); got != 25 {
		t.Fatalf("pct(1,4) = %v", got)
	}
	if got := pct(3, 0); got != 0 {
		t.Fatalf("pct(3,0) = %v, want 0 guard", got)
	}
}
