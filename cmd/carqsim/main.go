// Command carqsim runs one Cooperative-ARQ scenario and prints a summary,
// optionally exporting the full event trace as JSON Lines for offline
// analysis with carqtrace.
//
// Usage:
//
//	carqsim [-scenario testbed|highway|download|corridor] [-rounds N]
//	        [-seed N] [-cars N] [-speed m/s] [-coop=true] [-batch]
//	        [-trace file.jsonl]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/analysis"
	"repro/internal/report"
	"repro/internal/scenario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("carqsim: ")

	var (
		scen      = flag.String("scenario", "testbed", "scenario: testbed, highway, download or corridor")
		rounds    = flag.Int("rounds", 10, "experiment rounds (testbed/highway)")
		seed      = flag.Int64("seed", 1, "root random seed")
		cars      = flag.Int("cars", 3, "platoon size")
		speed     = flag.Float64("speed", 0, "speed in m/s (0: scenario default)")
		coop      = flag.Bool("coop", true, "enable Cooperative ARQ")
		batch     = flag.Bool("batch", false, "batch missing sequences into one REQUEST")
		tracePath = flag.String("trace", "", "write the first round's trace as JSONL to this file")
	)
	flag.Parse()

	switch *scen {
	case "testbed":
		runTestbed(*rounds, *seed, *cars, *speed, *coop, *batch, *tracePath)
	case "highway":
		runHighway(*rounds, *seed, *cars, *speed, *coop)
	case "download":
		runDownload(*seed, *cars, *speed, *coop)
	case "corridor":
		runCorridor(*rounds, *seed, *cars, *speed, *coop)
	default:
		log.Fatalf("unknown scenario %q", *scen)
	}
}

func runCorridor(rounds int, seed int64, cars int, speed float64, coop bool) {
	cfg := scenario.DefaultCorridor()
	cfg.Rounds = rounds
	cfg.Seed = seed
	cfg.Cars = cars
	cfg.Coop = coop
	if speed > 0 {
		cfg.SpeedMPS = speed
	}
	res, err := scenario.RunCorridor(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corridor: %d Infostations %.0f m apart, %d rounds, coop=%v\n\n",
		cfg.APCount, cfg.APSpacingM, rounds, coop)
	for _, car := range res.CarIDs {
		eff := analysis.CoverageEfficiency(res.Rounds, car, res.CarIDs)
		fmt.Printf("car %v: coverage efficiency %.3f\n", car, eff)
	}
}

func runTestbed(rounds int, seed int64, cars int, speed float64, coop, batch bool, tracePath string) {
	cfg := scenario.DefaultTestbed()
	cfg.Rounds = rounds
	cfg.Seed = seed
	cfg.Cars = cars
	cfg.Coop = coop
	cfg.BatchRequests = batch
	if speed > 0 {
		cfg.SpeedMPS = speed
	}
	res, err := scenario.RunTestbed(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("urban testbed: %d rounds, %d cars, %.1f m/s, coop=%v\n\n",
		rounds, cars, cfg.SpeedMPS, coop)
	fmt.Print(report.Table1(res))
	if coop {
		fmt.Println()
		for _, car := range res.CarIDs {
			if fig, err := report.NewCoopFigure(res.Rounds, res.CarIDs, car); err == nil {
				fmt.Printf("car %v: after-coop vs virtual-car oracle gap: max %.3f mean %.3f\n",
					car, fig.MaxGap, fig.MeanGap)
			}
		}
	}
	writeTrace(tracePath, res)
}

func writeTrace(path string, res *scenario.TestbedResult) {
	if path == "" || len(res.Rounds) == 0 {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatalf("creating trace file: %v", err)
	}
	defer f.Close()
	if err := res.Rounds[0].WriteJSONL(f); err != nil {
		log.Fatalf("writing trace: %v", err)
	}
	log.Printf("wrote round-0 trace to %s (%d tx, %d rx records)",
		path, len(res.Rounds[0].Tx), len(res.Rounds[0].Rx))
}

func runHighway(rounds int, seed int64, cars int, speed float64, coop bool) {
	cfg := scenario.DefaultHighway()
	cfg.Rounds = rounds
	cfg.Seed = seed
	cfg.Cars = cars
	cfg.Coop = coop
	if speed > 0 {
		cfg.SpeedMPS = speed
	}
	res, err := scenario.RunHighway(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("highway drive-thru: %d rounds, %d cars, %.1f m/s (%.0f km/h), coop=%v\n\n",
		rounds, cars, cfg.SpeedMPS, cfg.SpeedMPS*3.6, coop)
	rows := analysis.Table1(res.Rounds, res.CarIDs)
	fmt.Print(analysis.FormatTable1(rows))
}

func runDownload(seed int64, cars int, speed float64, coop bool) {
	cfg := scenario.DefaultDownload()
	cfg.Seed = seed
	cfg.Cars = cars
	cfg.Coop = coop
	if speed > 0 {
		cfg.SpeedMPS = speed
	}
	res, err := scenario.RunDownload(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("file download: %d blocks/car, %d cars, coop=%v (lap %v)\n\n",
		cfg.FileBlocks, cars, coop, res.LapTime.Round(time.Second))
	for _, c := range res.Cars {
		fmt.Printf("car %v: completed=%v visits=%d time=%v blocks=%d\n",
			c.Car, c.Completed, c.Visits, c.CompletionTime.Round(time.Second), c.Blocks)
	}
}
