// Command benchjson converts `go test -bench` text output on stdin into
// machine-readable JSON on stdout, so benchmark runs can be committed
// (BENCH_*.json) and diffed across PRs to track the perf trajectory.
//
//	go test -run=NONE -bench=. -benchtime=1x . | go run ./cmd/benchjson
//
// With -compare it instead diffs two committed snapshots and fails (exit
// 1) when any benchmark present in both regressed its ns/op or allocs/op
// by more than -factor:
//
//	go run ./cmd/benchjson -compare BENCH_2.json BENCH_3.json
//
// With no operands, -compare auto-selects the two newest BENCH_<n>.json
// files in the current directory (by numeric suffix), so the CI gate
// tracks the latest committed pair without per-PR Makefile edits:
//
//	go run ./cmd/benchjson -compare
//
// With -promlint it instead validates Prometheus text exposition on
// stdin — the CI gate over sweepd's /api/metrics — and with -nonzero
// additionally requires the named metric families to carry a positive
// sample:
//
//	curl -s host:8080/api/metrics | go run ./cmd/benchjson -promlint \
//	    -nonzero sim_events_processed_total,result_store_hits_total
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line: the owning package, the name
// (with the -N GOMAXPROCS suffix stripped), its iteration count, and
// every reported metric (ns/op, B/op, allocs/op and custom ReportMetric
// units) keyed by unit.
type Result struct {
	Pkg        string             `json:"pkg,omitempty"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the full document. Multi-package runs (`go test -bench ./...`)
// are supported: each benchmark carries the `pkg:` header in force when
// its line appeared.
type Report struct {
	Schema     string   `json:"schema"`
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// Parse reads `go test -bench` output and collects header fields and
// benchmark lines. Unparseable lines are skipped: test chatter (PASS, ok,
// --- output) is expected in the stream.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{Schema: "bench/1"}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if res, ok := parseBenchLine(line); ok {
				res.Pkg = pkg
				rep.Benchmarks = append(rep.Benchmarks, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseBenchLine parses one line of the form
//
//	BenchmarkName-8   12   98.7 ns/op   3 B/op   1 allocs/op   4.2 custom_unit
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	res := Result{Name: name, Iterations: iters, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, true
}

// gatedMetrics are the per-benchmark metrics the -compare gate watches,
// each under the same >factor growth rule: wall time and allocation
// count. B/op is deliberately not gated — byte volume scales with pooled
// buffer capacities and is too noisy across workload tweaks, while the
// allocation COUNT is the hot-path discipline the perf work defends.
var gatedMetrics = []string{"ns/op", "allocs/op"}

// Regression is one benchmark metric that worsened past the factor.
type Regression struct {
	Name   string
	Metric string
	Old    float64
	New    float64
	Factor float64
}

// benchKey identifies a benchmark across snapshots. The package qualifier
// keeps same-named benchmarks in different packages apart.
func benchKey(r Result) string {
	if r.Pkg == "" {
		return r.Name
	}
	return r.Pkg + "." + r.Name
}

// Compare diffs the shared benchmarks of two reports and returns every
// gated metric (ns/op, allocs/op) that grew by more than factor.
// Benchmarks — or metrics — present in only one snapshot (added, retired,
// or a run without -benchmem) are ignored: the gate is about regressions,
// not catalogue churn.
func Compare(old, new *Report, factor float64) []Regression {
	type metricKey struct {
		bench, metric string
	}
	oldVals := make(map[metricKey]float64)
	for _, b := range old.Benchmarks {
		for _, m := range gatedMetrics {
			if v, ok := b.Metrics[m]; ok && v > 0 {
				oldVals[metricKey{benchKey(b), m}] = v
			}
		}
	}
	var regs []Regression
	for _, b := range new.Benchmarks {
		for _, m := range gatedMetrics {
			v, ok := b.Metrics[m]
			if !ok || v <= 0 {
				continue
			}
			prev, shared := oldVals[metricKey{benchKey(b), m}]
			if !shared {
				continue
			}
			if v > prev*factor {
				regs = append(regs, Regression{
					Name: benchKey(b), Metric: m, Old: prev, New: v, Factor: v / prev,
				})
			}
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Factor != regs[j].Factor {
			return regs[i].Factor > regs[j].Factor
		}
		if regs[i].Name != regs[j].Name {
			return regs[i].Name < regs[j].Name
		}
		return regs[i].Metric < regs[j].Metric
	})
	return regs
}

func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func runCompare(oldPath, newPath string, factor float64) error {
	old, err := readReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := readReport(newPath)
	if err != nil {
		return err
	}
	regs := Compare(old, newRep, factor)
	shared := 0
	oldNames := make(map[string]bool, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		oldNames[benchKey(b)] = true
	}
	for _, b := range newRep.Benchmarks {
		if oldNames[benchKey(b)] {
			shared++
		}
	}
	fmt.Printf("benchjson: %d shared benchmarks (%s -> %s), regression factor %.1fx on %v\n",
		shared, oldPath, newPath, factor, gatedMetrics)
	if len(regs) == 0 {
		fmt.Println("benchjson: no regressions")
		return nil
	}
	for _, r := range regs {
		fmt.Printf("  REGRESSION %-60s %12.0f -> %12.0f %s (%.2fx)\n", r.Name, r.Old, r.New, r.Metric, r.Factor)
	}
	return fmt.Errorf("%d benchmark metric(s) regressed more than %.1fx", len(regs), factor)
}

// newestSnapshots picks the two newest committed BENCH_<n>.json files by
// their numeric suffix, so the Makefile's bench-compare gate always diffs
// the latest pair without anyone editing the target each PR.
func newestSnapshots(names []string) (oldPath, newPath string, err error) {
	type snap struct {
		n    int
		name string
	}
	var snaps []snap
	for _, name := range names {
		base := filepath.Base(name)
		if !strings.HasPrefix(base, "BENCH_") || !strings.HasSuffix(base, ".json") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(base, "BENCH_"), ".json"))
		if err != nil {
			continue
		}
		snaps = append(snaps, snap{n: n, name: name})
	}
	if len(snaps) < 2 {
		return "", "", fmt.Errorf("need at least two BENCH_<n>.json snapshots, found %d", len(snaps))
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].n < snaps[j].n })
	return snaps[len(snaps)-2].name, snaps[len(snaps)-1].name, nil
}

// autoSnapshots globs the current directory for snapshots.
func autoSnapshots() (string, string, error) {
	names, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		return "", "", err
	}
	return newestSnapshots(names)
}

func main() {
	var (
		compare  = flag.Bool("compare", false, "compare two BENCH_*.json snapshots instead of converting stdin")
		factor   = flag.Float64("factor", 2, "ns/op growth beyond which -compare reports a regression")
		promlint = flag.Bool("promlint", false, "validate Prometheus text exposition on stdin instead of converting bench output")
		nonzero  = flag.String("nonzero", "", "comma-separated metric families -promlint requires a positive sample in")
	)
	flag.Parse()

	if *promlint {
		var req []string
		for _, name := range strings.Split(*nonzero, ",") {
			if name = strings.TrimSpace(name); name != "" {
				req = append(req, name)
			}
		}
		if err := Promlint(os.Stdin, req); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: promlint: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("benchjson: exposition ok")
		return
	}

	if *compare {
		var oldPath, newPath string
		switch flag.NArg() {
		case 0:
			// No operands: gate the two newest committed snapshots, so
			// the comparison can never silently go stale as BENCH_<n>
			// files accumulate PR over PR.
			var err error
			if oldPath, newPath, err = autoSnapshots(); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
				os.Exit(2)
			}
		case 2:
			oldPath, newPath = flag.Arg(0), flag.Arg(1)
		default:
			fmt.Fprintln(os.Stderr, "benchjson: -compare takes two snapshot files, or none to auto-select the two newest BENCH_<n>.json")
			os.Exit(2)
		}
		if err := runCompare(oldPath, newPath, *factor); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}

	rep, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
