// Command benchjson converts `go test -bench` text output on stdin into
// machine-readable JSON on stdout, so benchmark runs can be committed
// (BENCH_*.json) and diffed across PRs to track the perf trajectory.
//
//	go test -run=NONE -bench=. -benchtime=1x . | go run ./cmd/benchjson
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line: the owning package, the name
// (with the -N GOMAXPROCS suffix stripped), its iteration count, and
// every reported metric (ns/op, B/op, allocs/op and custom ReportMetric
// units) keyed by unit.
type Result struct {
	Pkg        string             `json:"pkg,omitempty"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the full document. Multi-package runs (`go test -bench ./...`)
// are supported: each benchmark carries the `pkg:` header in force when
// its line appeared.
type Report struct {
	Schema     string   `json:"schema"`
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// Parse reads `go test -bench` output and collects header fields and
// benchmark lines. Unparseable lines are skipped: test chatter (PASS, ok,
// --- output) is expected in the stream.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{Schema: "bench/1"}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if res, ok := parseBenchLine(line); ok {
				res.Pkg = pkg
				rep.Benchmarks = append(rep.Benchmarks, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseBenchLine parses one line of the form
//
//	BenchmarkName-8   12   98.7 ns/op   3 B/op   1 allocs/op   4.2 custom_unit
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	res := Result{Name: name, Iterations: iters, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, true
}

func main() {
	rep, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
