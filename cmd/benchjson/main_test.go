package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTrafficGrid      	       1	 617082490 ns/op	         6.516 mean_mps	    612650 samples	213183064 B/op	    9969 allocs/op
BenchmarkStopGoRound-8    	       2	 154915131 ns/op	         2.759 crawl_%
--- some test noise
PASS
ok  	repro	0.918s
pkg: repro/internal/sim
BenchmarkEngine 	     100	      1234 ns/op
ok  	repro/internal/sim	0.100s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" {
		t.Fatalf("header = %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	tg := rep.Benchmarks[0]
	if tg.Name != "BenchmarkTrafficGrid" || tg.Iterations != 1 || tg.Pkg != "repro" {
		t.Fatalf("first = %+v", tg)
	}
	if tg.Metrics["ns/op"] != 617082490 || tg.Metrics["mean_mps"] != 6.516 ||
		tg.Metrics["samples"] != 612650 || tg.Metrics["allocs/op"] != 9969 {
		t.Fatalf("metrics = %v", tg.Metrics)
	}
	// The -N GOMAXPROCS suffix strips off.
	if rep.Benchmarks[1].Name != "BenchmarkStopGoRound" {
		t.Fatalf("second name = %q", rep.Benchmarks[1].Name)
	}
	if rep.Benchmarks[1].Metrics["crawl_%"] != 2.759 {
		t.Fatalf("custom metric = %v", rep.Benchmarks[1].Metrics)
	}
	// Benchmarks after a later pkg: header attribute to that package.
	if b := rep.Benchmarks[2]; b.Pkg != "repro/internal/sim" || b.Name != "BenchmarkEngine" {
		t.Fatalf("third = %+v", b)
	}
}

func TestParseSkipsMalformed(t *testing.T) {
	in := "BenchmarkBroken 12 abc ns/op\nBenchmarkOdd 1 2\nBenchmarkOK 3 5 ns/op\n"
	rep, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Name != "BenchmarkOK" {
		t.Fatalf("benchmarks = %+v", rep.Benchmarks)
	}
}

func mkReport(ns map[string]float64) *Report {
	rep := &Report{Schema: "bench/1"}
	for name, v := range ns {
		rep.Benchmarks = append(rep.Benchmarks, Result{
			Pkg: "repro", Name: name, Iterations: 1,
			Metrics: map[string]float64{"ns/op": v},
		})
	}
	return rep
}

func TestCompareFlagsRegressions(t *testing.T) {
	old := mkReport(map[string]float64{
		"BenchmarkA": 100, "BenchmarkB": 1000, "BenchmarkGone": 50,
	})
	now := mkReport(map[string]float64{
		"BenchmarkA":   150,  // 1.5x: fine under 2x
		"BenchmarkB":   2500, // 2.5x: regression
		"BenchmarkNew": 9e9,  // not shared: ignored
	})
	regs := Compare(old, now, 2)
	if len(regs) != 1 || regs[0].Name != "repro.BenchmarkB" || regs[0].Metric != "ns/op" {
		t.Fatalf("regressions = %+v", regs)
	}
	if regs[0].Factor < 2.49 || regs[0].Factor > 2.51 {
		t.Fatalf("factor = %v", regs[0].Factor)
	}
	if got := Compare(old, now, 3); len(got) != 0 {
		t.Fatalf("3x factor should pass, got %+v", got)
	}
}

func TestComparePackageQualified(t *testing.T) {
	// Same benchmark name in different packages must not cross-match.
	old := &Report{Benchmarks: []Result{
		{Pkg: "a", Name: "BenchmarkX", Metrics: map[string]float64{"ns/op": 10}},
	}}
	now := &Report{Benchmarks: []Result{
		{Pkg: "b", Name: "BenchmarkX", Metrics: map[string]float64{"ns/op": 1e6}},
	}}
	if regs := Compare(old, now, 2); len(regs) != 0 {
		t.Fatalf("cross-package match: %+v", regs)
	}
}

func TestRunCompareEndToEnd(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rep *Report) string {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := write("old.json", mkReport(map[string]float64{"BenchmarkA": 100}))
	okPath := write("ok.json", mkReport(map[string]float64{"BenchmarkA": 120}))
	badPath := write("bad.json", mkReport(map[string]float64{"BenchmarkA": 500}))
	if err := runCompare(oldPath, okPath, 2); err != nil {
		t.Fatalf("clean compare failed: %v", err)
	}
	if err := runCompare(oldPath, badPath, 2); err == nil {
		t.Fatal("5x regression not reported")
	}
	if err := runCompare(oldPath, filepath.Join(dir, "missing.json"), 2); err == nil {
		t.Fatal("missing file not reported")
	}
}

func mkReportMetrics(benches map[string]map[string]float64) *Report {
	rep := &Report{Schema: "bench/1"}
	for name, m := range benches {
		metrics := make(map[string]float64, len(m))
		for k, v := range m {
			metrics[k] = v
		}
		rep.Benchmarks = append(rep.Benchmarks, Result{
			Pkg: "repro", Name: name, Iterations: 1, Metrics: metrics,
		})
	}
	return rep
}

// TestCompareFlagsAllocRegressions pins the allocs/op gate: allocation
// growth past the factor fails even when ns/op is flat, metrics absent
// from either snapshot are not compared, and B/op is never gated.
func TestCompareFlagsAllocRegressions(t *testing.T) {
	old := mkReportMetrics(map[string]map[string]float64{
		"BenchmarkA": {"ns/op": 100, "allocs/op": 1000, "B/op": 10},
		"BenchmarkB": {"ns/op": 100, "allocs/op": 1000},
		"BenchmarkC": {"ns/op": 100}, // no allocs recorded in the old snapshot
	})
	now := mkReportMetrics(map[string]map[string]float64{
		"BenchmarkA": {"ns/op": 110, "allocs/op": 2500, "B/op": 1e9}, // allocs 2.5x, B/op ignored
		"BenchmarkB": {"ns/op": 110, "allocs/op": 1500},              // 1.5x: under the factor
		"BenchmarkC": {"ns/op": 110, "allocs/op": 9e9},               // not shared: ignored
	})
	regs := Compare(old, now, 2)
	if len(regs) != 1 {
		t.Fatalf("regressions = %+v", regs)
	}
	r := regs[0]
	if r.Name != "repro.BenchmarkA" || r.Metric != "allocs/op" || r.Old != 1000 || r.New != 2500 {
		t.Fatalf("regression = %+v", r)
	}
	if got := Compare(old, now, 3); len(got) != 0 {
		t.Fatalf("3x factor should pass, got %+v", got)
	}
}

// TestCompareBothMetricsRegress: one benchmark blowing both gates reports
// both, worst factor first.
func TestCompareBothMetricsRegress(t *testing.T) {
	old := mkReportMetrics(map[string]map[string]float64{
		"BenchmarkA": {"ns/op": 100, "allocs/op": 100},
	})
	now := mkReportMetrics(map[string]map[string]float64{
		"BenchmarkA": {"ns/op": 500, "allocs/op": 1000},
	})
	regs := Compare(old, now, 2)
	if len(regs) != 2 {
		t.Fatalf("regressions = %+v", regs)
	}
	if regs[0].Metric != "allocs/op" || regs[1].Metric != "ns/op" {
		t.Fatalf("order = %+v", regs)
	}
}

func TestNewestSnapshots(t *testing.T) {
	oldP, newP, err := newestSnapshots([]string{
		"BENCH_2.json", "BENCH_10.json", "BENCH_3.json", "notes.json", "BENCH_x.json",
	})
	if err != nil {
		t.Fatal(err)
	}
	// Numeric, not lexicographic: 10 is newest, 3 second-newest.
	if oldP != "BENCH_3.json" || newP != "BENCH_10.json" {
		t.Fatalf("selected %s -> %s", oldP, newP)
	}
	if _, _, err := newestSnapshots([]string{"BENCH_1.json"}); err == nil {
		t.Fatal("single snapshot accepted")
	}
	if _, _, err := newestSnapshots(nil); err == nil {
		t.Fatal("no snapshots accepted")
	}
}
