package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTrafficGrid      	       1	 617082490 ns/op	         6.516 mean_mps	    612650 samples	213183064 B/op	    9969 allocs/op
BenchmarkStopGoRound-8    	       2	 154915131 ns/op	         2.759 crawl_%
--- some test noise
PASS
ok  	repro	0.918s
pkg: repro/internal/sim
BenchmarkEngine 	     100	      1234 ns/op
ok  	repro/internal/sim	0.100s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" {
		t.Fatalf("header = %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	tg := rep.Benchmarks[0]
	if tg.Name != "BenchmarkTrafficGrid" || tg.Iterations != 1 || tg.Pkg != "repro" {
		t.Fatalf("first = %+v", tg)
	}
	if tg.Metrics["ns/op"] != 617082490 || tg.Metrics["mean_mps"] != 6.516 ||
		tg.Metrics["samples"] != 612650 || tg.Metrics["allocs/op"] != 9969 {
		t.Fatalf("metrics = %v", tg.Metrics)
	}
	// The -N GOMAXPROCS suffix strips off.
	if rep.Benchmarks[1].Name != "BenchmarkStopGoRound" {
		t.Fatalf("second name = %q", rep.Benchmarks[1].Name)
	}
	if rep.Benchmarks[1].Metrics["crawl_%"] != 2.759 {
		t.Fatalf("custom metric = %v", rep.Benchmarks[1].Metrics)
	}
	// Benchmarks after a later pkg: header attribute to that package.
	if b := rep.Benchmarks[2]; b.Pkg != "repro/internal/sim" || b.Name != "BenchmarkEngine" {
		t.Fatalf("third = %+v", b)
	}
}

func TestParseSkipsMalformed(t *testing.T) {
	in := "BenchmarkBroken 12 abc ns/op\nBenchmarkOdd 1 2\nBenchmarkOK 3 5 ns/op\n"
	rep, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Name != "BenchmarkOK" {
		t.Fatalf("benchmarks = %+v", rep.Benchmarks)
	}
}
