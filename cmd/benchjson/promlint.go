package main

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Promlint validates a Prometheus text-exposition stream (format 0.0.4):
// well-formed HELP/TYPE comments, valid metric and label names, parseable
// sample values, TYPE declared once and before the family's samples, and
// histogram series restricted to the _bucket/_sum/_count suffixes. It is
// the CI gate over sweepd's /api/metrics — deliberately a small subset of
// the upstream promlint, covering exactly the mistakes a hand-rolled
// renderer can make.
//
// nonzero lists metric families that must additionally carry at least one
// sample with a positive value; a sweep that ran leaves its core counters
// nonzero, so an all-zero family means the wiring silently broke.
func Promlint(r io.Reader, nonzero []string) error {
	types := make(map[string]string) // family -> TYPE
	helped := make(map[string]bool)  // family -> HELP seen
	sampled := make(map[string]bool) // family -> samples seen
	maxSample := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := lintComment(line, types, helped, sampled); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		name, value, err := lintSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		family := sampleFamily(name, types)
		if _, ok := types[family]; !ok {
			// An unknown family whose name extends a typed histogram is a
			// foreign series (only _bucket/_sum/_count belong), not just a
			// family that forgot its TYPE.
			for fam, t := range types {
				if (t == "histogram" || t == "summary") && strings.HasPrefix(name, fam+"_") {
					return fmt.Errorf("line %d: histogram %s has foreign series %s", lineNo, fam, name)
				}
			}
		}
		sampled[family] = true
		if value > maxSample[family] {
			maxSample[family] = value
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(sampled) == 0 {
		return fmt.Errorf("no samples in exposition")
	}
	for family := range sampled {
		if _, ok := types[family]; !ok {
			return fmt.Errorf("family %s has samples but no # TYPE", family)
		}
		if !helped[family] {
			return fmt.Errorf("family %s has samples but no # HELP", family)
		}
	}
	for _, family := range nonzero {
		if !sampled[family] {
			return fmt.Errorf("required family %s has no samples", family)
		}
		if maxSample[family] <= 0 {
			return fmt.Errorf("required family %s is all-zero", family)
		}
	}
	return nil
}

func lintComment(line string, types map[string]string, helped, sampled map[string]bool) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return fmt.Errorf("malformed comment %q", line)
	}
	kind, family := fields[1], fields[2]
	switch kind {
	case "HELP":
		if !validMetricName(family) {
			return fmt.Errorf("HELP for invalid metric name %q", family)
		}
		helped[family] = true
	case "TYPE":
		if !validMetricName(family) {
			return fmt.Errorf("TYPE for invalid metric name %q", family)
		}
		if len(fields) != 4 {
			return fmt.Errorf("TYPE %s missing type", family)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("TYPE %s has unknown type %q", family, fields[3])
		}
		if _, dup := types[family]; dup {
			return fmt.Errorf("duplicate TYPE for %s", family)
		}
		if sampled[family] {
			return fmt.Errorf("TYPE for %s after its samples", family)
		}
		types[family] = fields[3]
	default:
		return fmt.Errorf("unknown comment kind %q", kind)
	}
	return nil
}

// lintSample parses one sample line — name[{labels}] value [timestamp] —
// and returns the series name and value.
func lintSample(line string) (string, float64, error) {
	rest := line
	end := strings.IndexAny(rest, "{ ")
	if end < 0 {
		return "", 0, fmt.Errorf("malformed sample %q", line)
	}
	name := rest[:end]
	if !validMetricName(name) {
		return "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[end:]
	if rest[0] == '{' {
		closing, err := lintLabels(rest)
		if err != nil {
			return "", 0, fmt.Errorf("%s: %w", name, err)
		}
		rest = rest[closing+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", 0, fmt.Errorf("%s: expected value [timestamp], got %q", name, rest)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", 0, fmt.Errorf("%s: bad value %q", name, fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", 0, fmt.Errorf("%s: bad timestamp %q", name, fields[1])
		}
	}
	return name, v, nil
}

// lintLabels validates a {k="v",...} block at the start of s and returns
// the index of the closing brace.
func lintLabels(s string) (int, error) {
	i := 1 // past '{'
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i, nil
		}
		start := i
		for i < len(s) && s[i] != '=' && s[i] != '}' {
			i++
		}
		if i >= len(s) || s[i] != '=' {
			return 0, fmt.Errorf("label without value in %q", s)
		}
		if name := s[start:i]; !validLabelName(name) {
			return 0, fmt.Errorf("invalid label name %q", name)
		}
		i++ // past '='
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("unquoted label value in %q", s)
		}
		i++ // past opening quote
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				i++
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label value in %q", s)
		}
		i++ // past closing quote
		if i < len(s) && s[i] == ',' {
			i++
			continue
		}
		if i >= len(s) || s[i] != '}' {
			return 0, fmt.Errorf("unterminated label block in %q", s)
		}
	}
}

// sampleFamily maps a series name to its metric family: histogram series
// carry _bucket/_sum/_count suffixes over the family name.
func sampleFamily(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if t, ok := types[base]; ok && (t == "histogram" || t == "summary") {
				return base
			}
		}
	}
	return name
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(name string) bool {
	if name == "" || strings.ContainsRune(name, ':') {
		return false
	}
	return validMetricName(name)
}
