package main

import (
	"strings"
	"testing"
)

const validExposition = `# HELP sim_events_processed_total events whose callbacks ran
# TYPE sim_events_processed_total counter
sim_events_processed_total 4242
# HELP mac_drops_total frames not delivered, by cause
# TYPE mac_drops_total counter
mac_drops_total{cause="collision"} 7
mac_drops_total{cause="half-duplex"} 0
# HELP sim_heap_depth_high_water deepest queue depth
# TYPE sim_heap_depth_high_water gauge
sim_heap_depth_high_water 19
# HELP harness_unit_wall_seconds wall time per unit
# TYPE harness_unit_wall_seconds histogram
harness_unit_wall_seconds_bucket{le="0.001"} 0
harness_unit_wall_seconds_bucket{le="1"} 3
harness_unit_wall_seconds_bucket{le="+Inf"} 4
harness_unit_wall_seconds_sum 2.75
harness_unit_wall_seconds_count 4
`

func TestPromlintAcceptsValidExposition(t *testing.T) {
	if err := Promlint(strings.NewReader(validExposition), nil); err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
}

func TestPromlintNonzero(t *testing.T) {
	ok := []string{"sim_events_processed_total", "mac_drops_total", "harness_unit_wall_seconds"}
	if err := Promlint(strings.NewReader(validExposition), ok); err != nil {
		t.Fatalf("nonzero families rejected: %v", err)
	}
	// An all-zero family fails even though it has samples...
	err := Promlint(strings.NewReader(validExposition+
		"# HELP dead_total never incremented\n# TYPE dead_total counter\ndead_total 0\n"),
		[]string{"dead_total"})
	if err == nil || !strings.Contains(err.Error(), "all-zero") {
		t.Fatalf("all-zero family passed: %v", err)
	}
	// ...and an absent family fails outright.
	err = Promlint(strings.NewReader(validExposition), []string{"no_such_total"})
	if err == nil || !strings.Contains(err.Error(), "no samples") {
		t.Fatalf("absent family passed: %v", err)
	}
}

func TestPromlintRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, text, wantErr string
	}{
		{"empty", "", "no samples"},
		{"sample without TYPE", "orphan_total 1\n", "no # TYPE"},
		{"sample without HELP", "# TYPE h_total counter\nh_total 1\n", "no # HELP"},
		{"TYPE after samples",
			"# HELP x_total x\nx_total 1\n# TYPE x_total counter\n", "after its samples"},
		{"duplicate TYPE",
			"# HELP x_total x\n# TYPE x_total counter\n# TYPE x_total counter\nx_total 1\n", "duplicate TYPE"},
		{"unknown type",
			"# HELP x_total x\n# TYPE x_total countre\nx_total 1\n", "unknown type"},
		{"bad metric name", "# HELP 9bad x\n", "invalid metric name"},
		{"bad value",
			"# HELP x_total x\n# TYPE x_total counter\nx_total one\n", "bad value"},
		{"unterminated labels",
			"# HELP x_total x\n# TYPE x_total counter\nx_total{cause=\"collision\" 1\n", "unterminated"},
		{"unquoted label value",
			"# HELP x_total x\n# TYPE x_total counter\nx_total{cause=collision} 1\n", "unquoted"},
		{"foreign histogram series",
			"# HELP h_seconds x\n# TYPE h_seconds histogram\nh_seconds_bucket{le=\"+Inf\"} 1\nh_seconds_max 9\n", "foreign series"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Promlint(strings.NewReader(tc.text), nil)
			if err == nil {
				t.Fatalf("accepted %q", tc.text)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestPromlintAcceptsRealRegistryOutput pipes an actual registry
// rendering through the linter, so the exposition writer and its CI
// gate can never drift apart silently.
func TestPromlintAcceptsRealRegistryOutput(t *testing.T) {
	// Rendered by internal/metrics.WritePrometheus in the sweepd smoke;
	// this is a captured-shape equivalent including a labelled family
	// and histogram series.
	real := `# HELP mac_drops_total frames not delivered to a receiver, by cause
# TYPE mac_drops_total counter
mac_drops_total{cause="channel"} 1799
mac_drops_total{cause="collision"} 23
# HELP harness_unit_wall_seconds wall time per work unit (cached loads included)
# TYPE harness_unit_wall_seconds histogram
harness_unit_wall_seconds_bucket{le="0.001"} 0
harness_unit_wall_seconds_bucket{le="0.002"} 0
harness_unit_wall_seconds_bucket{le="+Inf"} 2
harness_unit_wall_seconds_sum 1.40625
harness_unit_wall_seconds_count 2
`
	if err := Promlint(strings.NewReader(real), []string{"mac_drops_total"}); err != nil {
		t.Fatalf("registry-shaped exposition rejected: %v", err)
	}
}
