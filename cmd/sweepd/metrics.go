package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/harness"
	"repro/internal/metrics"
)

// sweepd's own telemetry: request counts by endpoint group. The registry
// is always enabled in this process (there is no determinism contract to
// protect on the serving side — simulations never run here).
var mRequests = metrics.NewLabelledCounter("sweepd_http_requests_total",
	"HTTP requests served, by endpoint group", "route", "all")

// mPanics counts handler panics recovered by the 500 middleware — on a
// healthy service this stays at zero, so any movement is a page.
var mPanics = metrics.NewCounter("sweepd_panics_total",
	"HTTP handler panics recovered and answered with 500")

// PrometheusContentType is the exposition-format content type
// /api/metrics serves by default.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// handleMetrics serves the merged metrics view: the sweep's persisted
// metrics.json (written by cmd/experiments -metrics, reloaded from disk
// on every request so a re-run sweep shows up immediately) layered over
// this process's live registry. The run's families win — sweepd links
// the same instrumented packages, so its own zero-valued registrations
// of sim/mac/store counters would otherwise shadow the sweep's counts.
//
// Content negotiation: Prometheus text exposition by default (the scrape
// format), JSON when the Accept header asks for application/json.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := metrics.Default().Snapshot()
	if data, err := os.ReadFile(filepath.Join(s.outDir, harness.MetricsFile)); err == nil {
		if fileSnap, err := metrics.ReadSnapshotJSON(data); err == nil {
			snap = fileSnap.Merge(snap)
		}
	}
	var buf bytes.Buffer
	var contentType string
	var err error
	if strings.Contains(r.Header.Get("Accept"), "application/json") {
		contentType = "application/json"
		err = snap.WriteJSON(&buf)
	} else {
		contentType = PrometheusContentType
		err = snap.WritePrometheus(&buf)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	sum := sha256.Sum256(buf.Bytes())
	serveContent(w, r, etagFor(hex.EncodeToString(sum[:])), contentType, buf.Bytes())
}

// progressView is the /api/progress response: how complete the sweep on
// disk is, assembled from the manifest (unit decomposition), the timings
// sidecar (computed-vs-cached splits, wall times) and the result store.
// A sweep still running behind sweepd shows its manifest-recorded
// experiments grow as the producer rewrites the files.
type progressView struct {
	Schema        int                   `json:"schema"`
	GeneratedAt   string                `json:"generated_at,omitempty"`
	Workers       int                   `json:"workers,omitempty"`
	UnitsTotal    int                   `json:"units_total"`
	UnitsComputed int                   `json:"units_computed"`
	UnitsCached   int                   `json:"units_cached"`
	WallMS        int64                 `json:"wall_ms"`
	Experiments   []progressExperiment  `json:"experiments"`
	Store         *harness.StoreSummary `json:"store,omitempty"`
}

type progressExperiment struct {
	Name          string `json:"name"`
	Units         int    `json:"units"`
	UnitsComputed int    `json:"units_computed"`
	UnitsCached   int    `json:"units_cached"`
	WallMS        int64  `json:"wall_ms"`
	Error         string `json:"error,omitempty"`
}

func (s *server) handleProgress(w http.ResponseWriter, r *http.Request) {
	if err := s.refresh(); err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	s.mu.Lock()
	m := s.manifest
	s.mu.Unlock()

	view := progressView{Schema: m.Schema}
	byName := make(map[string]*harness.ExperimentTiming)
	if tim, err := harness.ReadTimings(filepath.Join(s.outDir, "timings.json")); err == nil {
		view.GeneratedAt = tim.GeneratedAt
		view.Workers = tim.Workers
		for _, t := range tim.Experiments {
			byName[t.Name] = t
		}
	}
	for _, exp := range m.Experiments {
		pe := progressExperiment{Name: exp.Name, Units: exp.Units, Error: exp.Error}
		if t, ok := byName[exp.Name]; ok {
			pe.UnitsComputed = t.UnitsComputed
			pe.UnitsCached = t.UnitsCached
			pe.WallMS = t.WallMS
		}
		view.UnitsTotal += pe.Units
		view.UnitsComputed += pe.UnitsComputed
		view.UnitsCached += pe.UnitsCached
		view.WallMS += pe.WallMS
		view.Experiments = append(view.Experiments, pe)
	}
	if s.store != nil {
		sum := s.store.Summary()
		view.Store = &sum
	}
	s.serveJSON(w, r, view)
}
