package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
)

// fixedClock pins the runner clock so test sweeps are fully
// deterministic.
func fixedClock() time.Time { return time.Unix(1700000000, 0).UTC() }

// writeSweep produces a real sweep directory through the harness —
// manifest, timings and typed outputs — without running simulations.
func writeSweep(t *testing.T, dir string, expName string) {
	t.Helper()
	if _, ok := harness.Lookup(expName); !ok {
		registerProbe(expName)
	}
	r, err := harness.NewRunner(harness.Options{Rounds: 1, Seed: 1, OutDir: dir, Now: fixedClock})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run([]string{expName}); err != nil {
		t.Fatal(err)
	}
}

func registerProbe(expName string) {
	harness.Register(harness.Experiment{
		Name:  expName,
		Title: "synthetic sweepd probe",
		Run: func(c *harness.Context) error {
			if err := c.Emit(expName+".txt", harness.OutputRaw, "report body\n"); err != nil {
				return err
			}
			if err := c.Emit(expName+".dat", harness.OutputTable, "# x y\n1 2\n"); err != nil {
				return err
			}
			return c.Emit(expName+".svg", harness.OutputPlot, "<svg/>\n")
		},
	})
}

func newTestServer(t *testing.T) (*httptest.Server, string) {
	t.Helper()
	dir := t.TempDir()
	writeSweep(t, dir, "sweepd-probe")
	benchDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(benchDir, "BENCH_9.json"), []byte(`{"bench":true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(dir, benchDir, nil, false).routes())
	t.Cleanup(ts.Close)
	return ts, dir
}

func get(t *testing.T, url string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestCatalogueListsTypedOutputs(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, body := get(t, ts.URL+"/api/catalogue", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("catalogue status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("catalogue content type %q", ct)
	}
	var cat catalogue
	if err := json.Unmarshal(body, &cat); err != nil {
		t.Fatal(err)
	}
	var probe *catalogueRecord
	for i := range cat.Experiments {
		if cat.Experiments[i].Name == "sweepd-probe" {
			probe = &cat.Experiments[i]
		}
	}
	if probe == nil {
		t.Fatalf("catalogue misses sweepd-probe: %s", body)
	}
	kinds := map[string]harness.OutputKind{}
	for _, out := range probe.Outputs {
		kinds[out.File] = out.Kind
		if out.ETag == "" || !strings.HasPrefix(out.URL, "/outputs/") {
			t.Fatalf("output %+v lacks etag or url", out)
		}
	}
	if kinds["sweepd-probe.txt"] != harness.OutputRaw ||
		kinds["sweepd-probe.dat"] != harness.OutputTable ||
		kinds["sweepd-probe.svg"] != harness.OutputPlot {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestOutputContentTypesAndConditionalGet(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		file, wantCT string
	}{
		{"sweepd-probe.txt", "text/plain; charset=utf-8"},
		{"sweepd-probe.dat", "text/plain; charset=utf-8"},
		{"sweepd-probe.svg", "image/svg+xml"},
	}
	for _, tc := range cases {
		resp, body := get(t, ts.URL+"/outputs/"+tc.file, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d", tc.file, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != tc.wantCT {
			t.Fatalf("%s content type %q, want %q", tc.file, ct, tc.wantCT)
		}
		etag := resp.Header.Get("ETag")
		if len(etag) < 10 || !strings.HasPrefix(etag, `"`) {
			t.Fatalf("%s etag %q", tc.file, etag)
		}
		if len(body) == 0 {
			t.Fatalf("%s: empty body", tc.file)
		}

		// Matching If-None-Match answers 304 with no body.
		resp304, body304 := get(t, ts.URL+"/outputs/"+tc.file, map[string]string{"If-None-Match": etag})
		if resp304.StatusCode != http.StatusNotModified {
			t.Fatalf("%s conditional status %d, want 304", tc.file, resp304.StatusCode)
		}
		if len(body304) != 0 {
			t.Fatalf("%s: 304 carried a body", tc.file)
		}
		if got := resp304.Header.Get("ETag"); got != etag {
			t.Fatalf("%s: 304 etag %q, want %q", tc.file, got, etag)
		}

		// Weak-prefixed and list forms match; a stale tag does not.
		respW, _ := get(t, ts.URL+"/outputs/"+tc.file, map[string]string{"If-None-Match": `W/` + etag + `, "other"`})
		if respW.StatusCode != http.StatusNotModified {
			t.Fatalf("%s weak conditional status %d", tc.file, respW.StatusCode)
		}
		respStale, _ := get(t, ts.URL+"/outputs/"+tc.file, map[string]string{"If-None-Match": `"stale"`})
		if respStale.StatusCode != http.StatusOK {
			t.Fatalf("%s stale conditional status %d, want 200", tc.file, respStale.StatusCode)
		}
	}
}

func TestOutputsAreManifestAllowlisted(t *testing.T) {
	ts, dir := newTestServer(t)
	// On disk but not in the manifest: invisible to the API.
	if err := os.WriteFile(filepath.Join(dir, "secret.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/outputs/secret.txt", "/outputs/no-such.txt", "/outputs/manifest.json"} {
		resp, _ := get(t, ts.URL+path, nil)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s status %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestManifestEndpointServesRawBytes(t *testing.T) {
	ts, dir := newTestServer(t)
	want, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	resp, body := get(t, ts.URL+"/api/manifest", nil)
	if resp.StatusCode != http.StatusOK || string(body) != string(want) {
		t.Fatalf("manifest endpoint diverges from disk (status %d)", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	resp304, _ := get(t, ts.URL+"/api/manifest", map[string]string{"If-None-Match": etag})
	if resp304.StatusCode != http.StatusNotModified {
		t.Fatalf("manifest conditional status %d", resp304.StatusCode)
	}
}

func TestManifestReloadPicksUpNewExperiments(t *testing.T) {
	ts, dir := newTestServer(t)
	if resp, _ := get(t, ts.URL+"/api/catalogue", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("first catalogue status %d", resp.StatusCode)
	}
	// A second producer run extends the sweep behind the server's back.
	writeSweep(t, dir, "sweepd-probe-late")
	_, body := get(t, ts.URL+"/api/catalogue", nil)
	if !strings.Contains(string(body), "sweepd-probe-late") {
		t.Fatalf("catalogue did not reload: %s", body)
	}
}

func TestBenchEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	_, body := get(t, ts.URL+"/bench/", nil)
	if !strings.Contains(string(body), "BENCH_9.json") {
		t.Fatalf("bench listing misses artifact: %s", body)
	}
	resp, body := get(t, ts.URL+"/bench/BENCH_9.json", nil)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("bench artifact status %d type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	etag := resp.Header.Get("ETag")
	resp304, _ := get(t, ts.URL+"/bench/BENCH_9.json", map[string]string{"If-None-Match": etag})
	if resp304.StatusCode != http.StatusNotModified {
		t.Fatalf("bench conditional status %d", resp304.StatusCode)
	}
	if resp, _ := get(t, ts.URL+"/bench/other.json", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("non-bench artifact served: %d", resp.StatusCode)
	}
	if string(body) != `{"bench":true}` {
		t.Fatalf("bench body %q", body)
	}
}

func TestStoreEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	// No store configured: 404.
	if resp, _ := get(t, ts.URL+"/api/store", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("store without store: %d", resp.StatusCode)
	}

	storeDir := t.TempDir()
	store, err := harness.NewResultStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save("probe-key", &harness.UnitResult{Meta: []byte(`{}`)}); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	writeSweep(t, dir, "sweepd-probe-store")
	ts2 := httptest.NewServer(newServer(dir, t.TempDir(), store, false).routes())
	defer ts2.Close()
	var sum harness.StoreSummary
	_, body := get(t, ts2.URL+"/api/store", nil)
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Entries != 1 || sum.Bytes <= 0 || sum.Schema != harness.ResultStoreSchema {
		t.Fatalf("store summary %+v", sum)
	}
}

func TestReadOnlyAPI(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/api/catalogue", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d, want 405", resp.StatusCode)
	}
}

func TestMissingManifestAnswers503(t *testing.T) {
	ts := httptest.NewServer(newServer(t.TempDir(), t.TempDir(), nil, false).routes())
	defer ts.Close()
	resp, _ := get(t, ts.URL+"/api/catalogue", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("catalogue without manifest: %d, want 503", resp.StatusCode)
	}
}
