package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/harness"
)

// server serves one sweep output directory over HTTP. Everything it
// serves is content-addressed: output ETags come from the manifest's
// SHA-256 hashes (computed by the harness at write time, never
// re-hashed here), so a million conditional GETs against an unchanged
// sweep cost one stat and a 304 each.
//
// The manifest is reloaded when manifest.json changes on disk
// (mtime+size), so a sweepd can sit on a store directory while
// experiment processes keep appending results behind it.
type server struct {
	outDir   string
	benchDir string
	store    *harness.ResultStore // nil: no store endpoints
	debug    bool                 // mount net/http/pprof under /debug/pprof/
	started  time.Time            // process start, for /api/healthz uptime

	mu          sync.Mutex
	manifest    *harness.Manifest
	manifestRaw []byte
	manifestTag string
	manifestMod time.Time
	manifestLen int64
	outputs     map[string]outputInfo
}

// outputInfo is the serving metadata of one manifest-recorded output.
type outputInfo struct {
	kind       harness.OutputKind
	etag       string
	experiment string
}

func newServer(outDir, benchDir string, store *harness.ResultStore, debug bool) *server {
	return &server{outDir: outDir, benchDir: benchDir, store: store, debug: debug, started: time.Now()}
}

// routes builds the handler tree. Paths are matched manually (prefix
// handlers) so the binary stays go1.21-compatible.
func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/api/healthz", s.handleHealthz)
	mux.HandleFunc("/api/catalogue", s.handleCatalogue)
	mux.HandleFunc("/api/manifest", s.handleManifest)
	mux.HandleFunc("/api/store", s.handleStore)
	mux.HandleFunc("/api/metrics", s.handleMetrics)
	mux.HandleFunc("/api/progress", s.handleProgress)
	mux.HandleFunc("/outputs/", s.handleOutput)
	mux.HandleFunc("/bench/", s.handleBench)
	mux.HandleFunc("/", s.handleIndex)
	if s.debug {
		// net/http/pprof registers its handlers on the default mux at
		// import; mounting that mux under the readOnly guard exposes them
		// without letting profiling URLs leak into production serving.
		mux.Handle("/debug/pprof/", http.DefaultServeMux)
	}
	return s.recoverPanics(s.readOnly(mux))
}

// routeList names every mounted route pattern, for the index document
// (and for knownRoute, which derives method semantics from it).
func (s *server) routeList() []string {
	routes := []string{
		"/healthz",
		"/api/healthz",
		"/api/catalogue",
		"/api/manifest",
		"/api/store",
		"/api/metrics",
		"/api/progress",
		"/outputs/<file>",
		"/bench/",
	}
	if s.debug {
		routes = append(routes, "/debug/pprof/")
	}
	return routes
}

// knownRoute reports whether path falls under a mounted route, so the
// readOnly guard can distinguish a wrong method on a real endpoint (405
// with Allow) from a path that does not exist at all (404).
func (s *server) knownRoute(path string) bool {
	switch path {
	case "/", "/healthz", "/api/healthz", "/api/catalogue", "/api/manifest",
		"/api/store", "/api/metrics", "/api/progress":
		return true
	}
	if strings.HasPrefix(path, "/outputs/") || strings.HasPrefix(path, "/bench/") {
		return true
	}
	return s.debug && strings.HasPrefix(path, "/debug/pprof/")
}

// readOnly rejects every method except GET and HEAD on known routes —
// the sweep producer writes through the filesystem, never through the
// API — and 404s unknown paths whatever the method. It also counts
// every request into the registry.
func (s *server) readOnly(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mRequests.Inc()
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			if !s.knownRoute(r.URL.Path) {
				http.NotFound(w, r)
				return
			}
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "read-only API", http.StatusMethodNotAllowed)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// recoverPanics is the outermost middleware: a panicking handler
// answers 500 (when nothing has been written yet) instead of tearing
// down the connection — and never the process; net/http would contain
// the panic to one connection, but an operator still wants the count
// and the stack. http.ErrAbortHandler keeps its meaning.
func (s *server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if v == http.ErrAbortHandler {
				panic(v)
			}
			mPanics.Inc()
			log.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
			http.Error(w, "internal server error", http.StatusInternalServerError)
		}()
		next.ServeHTTP(w, r)
	})
}

// handleHealthz is the liveness/readiness probe: always 200 while the
// process serves, with the manifest state and uptime as the payload —
// a load balancer keys on the status, an operator on the body.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	loaded := s.refresh() == nil
	s.mu.Lock()
	experiments := 0
	if s.manifest != nil {
		experiments = len(s.manifest.Experiments)
	}
	s.mu.Unlock()
	s.serveJSON(w, r, map[string]any{
		"status":          "ok",
		"manifest_loaded": loaded,
		"experiments":     experiments,
		"uptime_seconds":  int64(time.Since(s.started).Seconds()),
	})
}

// refresh loads (or reloads) manifest.json when it changed on disk.
// Callers hold no lock; refresh takes it.
func (s *server) refresh() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	path := filepath.Join(s.outDir, "manifest.json")
	info, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("no manifest at %s (run a sweep first): %w", path, err)
	}
	if s.manifest != nil && info.ModTime().Equal(s.manifestMod) && info.Size() == s.manifestLen {
		return nil
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	m, err := harness.ReadManifest(path)
	if err != nil {
		return err
	}
	outputs := make(map[string]outputInfo)
	for _, exp := range m.Experiments {
		for _, out := range exp.Outputs {
			outputs[out.File] = outputInfo{
				kind:       out.Kind,
				etag:       etagFor(out.SHA256),
				experiment: exp.Name,
			}
		}
	}
	sum := sha256.Sum256(raw)
	s.manifest, s.manifestRaw = m, raw
	s.manifestTag = etagFor(hex.EncodeToString(sum[:]))
	s.manifestMod, s.manifestLen = info.ModTime(), info.Size()
	s.outputs = outputs
	return nil
}

// etagFor wraps a content hash as a strong ETag.
func etagFor(hash string) string { return `"` + hash + `"` }

// etagMatch implements If-None-Match: a comma-separated list of entity
// tags, each possibly weak-prefixed, or the wildcard.
func etagMatch(header, etag string) bool {
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		if part == "*" {
			return true
		}
		part = strings.TrimPrefix(part, "W/")
		if part == etag {
			return true
		}
	}
	return false
}

// serveContent writes body under its content-addressed ETag, answering
// a matching If-None-Match with 304 and no body.
func serveContent(w http.ResponseWriter, r *http.Request, etag, contentType string, body []byte) {
	w.Header().Set("ETag", etag)
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("Cache-Control", "no-cache") // revalidate; the ETag makes it cheap
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Length", fmt.Sprint(len(body)))
	if r.Method == http.MethodHead {
		return
	}
	w.Write(body)
}

func (s *server) serveJSON(w http.ResponseWriter, r *http.Request, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	data = append(data, '\n')
	sum := sha256.Sum256(data)
	serveContent(w, r, etagFor(hex.EncodeToString(sum[:])), "application/json", data)
}

// handleIndex names the endpoints; anything else under / is a 404.
func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	s.serveJSON(w, r, map[string]any{
		"service":   "sweepd",
		"endpoints": s.routeList(),
	})
}

// catalogue is the API shape of the manifest: every experiment with its
// outputs addressable by URL and ETag.
type catalogue struct {
	Schema      int               `json:"schema"`
	Seed        int64             `json:"seed"`
	Rounds      int               `json:"rounds"`
	Experiments []catalogueRecord `json:"experiments"`
}

type catalogueRecord struct {
	Name    string            `json:"name"`
	Title   string            `json:"title"`
	Units   int               `json:"units"`
	Error   string            `json:"error,omitempty"`
	Outputs []catalogueOutput `json:"outputs,omitempty"`
}

type catalogueOutput struct {
	File  string             `json:"file"`
	Kind  harness.OutputKind `json:"kind"`
	Bytes int                `json:"bytes"`
	ETag  string             `json:"etag"`
	URL   string             `json:"url"`
}

func (s *server) handleCatalogue(w http.ResponseWriter, r *http.Request) {
	if err := s.refresh(); err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	s.mu.Lock()
	m := s.manifest
	s.mu.Unlock()
	cat := catalogue{Schema: m.Schema, Seed: m.Seed, Rounds: m.Rounds}
	for _, exp := range m.Experiments {
		rec := catalogueRecord{Name: exp.Name, Title: exp.Title, Units: exp.Units, Error: exp.Error}
		for _, out := range exp.Outputs {
			rec.Outputs = append(rec.Outputs, catalogueOutput{
				File:  out.File,
				Kind:  out.Kind,
				Bytes: out.Bytes,
				ETag:  etagFor(out.SHA256),
				URL:   "/outputs/" + out.File,
			})
		}
		cat.Experiments = append(cat.Experiments, rec)
	}
	s.serveJSON(w, r, cat)
}

func (s *server) handleManifest(w http.ResponseWriter, r *http.Request) {
	if err := s.refresh(); err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	s.mu.Lock()
	raw, tag := s.manifestRaw, s.manifestTag
	s.mu.Unlock()
	serveContent(w, r, tag, "application/json", raw)
}

func (s *server) handleStore(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		http.Error(w, "no result store configured (-result-store)", http.StatusNotFound)
		return
	}
	s.serveJSON(w, r, s.store.Summary())
}

// handleOutput serves one manifest-recorded study output. The manifest
// is the allowlist: a file on disk but not in the manifest does not
// exist for the API, which also keeps traversal out by construction.
func (s *server) handleOutput(w http.ResponseWriter, r *http.Request) {
	if err := s.refresh(); err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/outputs/")
	s.mu.Lock()
	info, ok := s.outputs[name]
	s.mu.Unlock()
	if !ok {
		http.NotFound(w, r)
		return
	}
	body, err := os.ReadFile(filepath.Join(s.outDir, name))
	if err != nil {
		http.Error(w, fmt.Sprintf("manifest lists %s but: %v", name, err), http.StatusInternalServerError)
		return
	}
	serveContent(w, r, info.etag, info.kind.ContentType(), body)
}

// handleBench lists and serves the committed BENCH_<n>.json perf
// snapshots — the natural API home for the project's bench artifacts.
func (s *server) handleBench(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/bench/")
	if name == "" {
		ents, err := os.ReadDir(s.benchDir)
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		var names []string
		for _, e := range ents {
			if benchArtifact(e.Name()) {
				names = append(names, e.Name())
			}
		}
		sort.Strings(names)
		s.serveJSON(w, r, map[string]any{"artifacts": names})
		return
	}
	if !benchArtifact(name) || name != filepath.Base(name) {
		http.NotFound(w, r)
		return
	}
	body, err := os.ReadFile(filepath.Join(s.benchDir, name))
	if err != nil {
		http.NotFound(w, r)
		return
	}
	sum := sha256.Sum256(body)
	serveContent(w, r, etagFor(hex.EncodeToString(sum[:])), "application/json", body)
}

// benchArtifact matches the committed BENCH_<n>.json snapshot names.
func benchArtifact(name string) bool {
	return strings.HasPrefix(name, "BENCH_") && strings.HasSuffix(name, ".json")
}
