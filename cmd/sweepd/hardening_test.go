package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestAPIHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, body := get(t, ts.URL+"/api/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d: %s", resp.StatusCode, body)
	}
	var h struct {
		Status         string `json:"status"`
		ManifestLoaded bool   `json:"manifest_loaded"`
		Experiments    int    `json:"experiments"`
		UptimeSeconds  *int64 `json:"uptime_seconds"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("healthz body: %v\n%s", err, body)
	}
	if h.Status != "ok" || !h.ManifestLoaded || h.Experiments != 1 || h.UptimeSeconds == nil {
		t.Fatalf("healthz = %+v", h)
	}
}

// TestAPIHealthzWithoutManifest: the probe stays 200 before the first
// sweep lands — the process is alive; readiness is in the payload.
func TestAPIHealthzWithoutManifest(t *testing.T) {
	ts := httptest.NewServer(newServer(t.TempDir(), t.TempDir(), nil, false).routes())
	t.Cleanup(ts.Close)
	resp, body := get(t, ts.URL+"/api/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d before a manifest exists: %s", resp.StatusCode, body)
	}
	var h struct {
		ManifestLoaded bool `json:"manifest_loaded"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.ManifestLoaded {
		t.Fatal("manifest_loaded true with no manifest on disk")
	}
}

// TestPanicRecoveryMiddleware: a panicking handler answers 500 and the
// process (and every later request) keeps serving.
func TestPanicRecoveryMiddleware(t *testing.T) {
	s := newServer(t.TempDir(), t.TempDir(), nil, false)
	mux := http.NewServeMux()
	mux.HandleFunc("/boom", func(http.ResponseWriter, *http.Request) {
		panic("injected handler panic")
	})
	mux.HandleFunc("/ok", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("still here"))
	})
	ts := httptest.NewServer(s.recoverPanics(mux))
	t.Cleanup(ts.Close)

	before := mPanics.Value()
	resp, body := get(t, ts.URL+"/boom", nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler answered %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "internal server error") {
		t.Fatalf("500 body = %q", body)
	}
	if got := mPanics.Value(); got != before+1 {
		t.Fatalf("panic counter moved %d -> %d, want +1", before, got)
	}
	resp, body = get(t, ts.URL+"/ok", nil)
	if resp.StatusCode != http.StatusOK || string(body) != "still here" {
		t.Fatalf("server did not survive the panic: %d %q", resp.StatusCode, body)
	}
}

// TestHealthzKnownToReadOnlyGuard: wrong methods on the new endpoint
// get 405 + Allow, like every other known route.
func TestHealthzKnownToReadOnlyGuard(t *testing.T) {
	ts, _ := newTestServer(t)
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/api/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") == "" {
		t.Fatalf("POST /api/healthz = %d (Allow %q), want 405 with Allow", resp.StatusCode, resp.Header.Get("Allow"))
	}
}
