package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/metrics"
)

// writeRunSnapshot fakes the sweep producer's metrics.json: a private
// registry (so the test does not pollute the process default) with the
// counters a real instrumented run would leave behind.
func writeRunSnapshot(t *testing.T, dir string) {
	t.Helper()
	reg := metrics.NewRegistry()
	reg.Counter("sim_events_processed_total", "events whose callbacks ran").Add(4242)
	reg.Counter("result_store_hits_total", "store hits").Add(7)
	reg.Counter("result_store_misses_total", "store misses").Add(3)
	var buf bytes.Buffer
	if err := reg.Snapshot().Deterministic().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, harness.MetricsFile), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsEndpointServesMergedExposition(t *testing.T) {
	ts, dir := newTestServer(t)
	writeRunSnapshot(t, dir)

	resp, body := get(t, ts.URL+"/api/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != PrometheusContentType {
		t.Fatalf("metrics content type %q", ct)
	}
	text := string(body)
	// The run's persisted counts win over this process's zero-valued
	// registrations of the same families.
	for _, want := range []string{
		"# TYPE sim_events_processed_total counter",
		"sim_events_processed_total 4242",
		"result_store_hits_total 7",
		"result_store_misses_total 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition misses %q:\n%s", want, text)
		}
	}
	// Live-only families (sweepd's own request counter) still appear.
	if !strings.Contains(text, "sweepd_http_requests_total") {
		t.Errorf("exposition misses the live request counter:\n%s", text)
	}

	// The exposition must satisfy the same linter CI scrapes it with.
	if err := lintExposition(text); err != nil {
		t.Errorf("exposition fails lint: %v", err)
	}

	// Content negotiation: JSON on request.
	respJSON, bodyJSON := get(t, ts.URL+"/api/metrics", map[string]string{"Accept": "application/json"})
	if ct := respJSON.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("negotiated content type %q", ct)
	}
	if snap, err := metrics.ReadSnapshotJSON(bodyJSON); err != nil {
		t.Fatalf("JSON body does not parse as a snapshot: %v", err)
	} else {
		found := false
		for _, c := range snap.Counters {
			if c.Name == "sim_events_processed_total" && c.Value == 4242 {
				found = true
			}
		}
		if !found {
			t.Fatalf("JSON snapshot misses the merged run counter: %s", bodyJSON)
		}
	}
}

// lintExposition re-checks the text format with the same shape of rules
// cmd/benchjson -promlint enforces: HELP/TYPE before samples, one TYPE
// per family. Kept minimal here; the full linter has its own tests.
func lintExposition(text string) error {
	types := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return &lintErr{line}
			}
			if types[fields[2]] {
				return &lintErr{"duplicate TYPE " + fields[2]}
			}
			types[fields[2]] = true
		}
	}
	return nil
}

type lintErr struct{ s string }

func (e *lintErr) Error() string { return e.s }

func TestMetricsEndpointWithoutRunSnapshot(t *testing.T) {
	// No metrics.json on disk: the endpoint still serves the live
	// registry instead of erroring, so scrapes never flap while the
	// first instrumented sweep is running.
	ts, _ := newTestServer(t)
	resp, body := get(t, ts.URL+"/api/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics without snapshot: %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "sweepd_http_requests_total") {
		t.Fatalf("live-only exposition misses the request counter: %s", body)
	}
}

func TestProgressEndpoint(t *testing.T) {
	expName := "sweepd-progress-probe"
	if _, ok := harness.Lookup(expName); !ok {
		harness.Register(harness.Experiment{
			Name:  expName,
			Title: "synthetic progress probe",
			Run: func(c *harness.Context) error {
				return c.RunUnits([]harness.Unit{
					{Scenario: "probe", Point: "p0", Round: 0, Run: func() error { return nil }},
					{Scenario: "probe", Point: "p0", Round: 1, Run: func() error { return nil }},
				})
			},
		})
	}
	dir := t.TempDir()
	writeSweep(t, dir, expName)
	ts := httptest.NewServer(newServer(dir, t.TempDir(), nil, false).routes())
	defer ts.Close()

	resp, body := get(t, ts.URL+"/api/progress", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("progress status %d: %s", resp.StatusCode, body)
	}
	text := string(body)
	if !strings.Contains(text, `"units_total": 2`) {
		t.Errorf("progress misses the unit total: %s", text)
	}
	if !strings.Contains(text, expName) {
		t.Errorf("progress misses the experiment breakdown: %s", text)
	}
	if !strings.Contains(text, `"generated_at"`) {
		t.Errorf("progress misses timings provenance: %s", text)
	}
}

func TestIndexListsAllRoutes(t *testing.T) {
	ts, _ := newTestServer(t)
	_, body := get(t, ts.URL+"/", nil)
	// ("<file>" arrives JSON-escaped as <file>, so match the
	// route prefixes only.)
	for _, route := range []string{
		"/healthz", "/api/catalogue", "/api/manifest", "/api/store",
		"/api/metrics", "/api/progress", "/outputs/", "/bench/",
	} {
		if !strings.Contains(string(body), route) {
			t.Errorf("index misses %s: %s", route, body)
		}
	}
	// pprof is only advertised (and mounted) with -debug.
	if strings.Contains(string(body), "/debug/pprof/") {
		t.Errorf("index lists pprof without -debug: %s", body)
	}
}

func TestDebugMountsPprof(t *testing.T) {
	dir := t.TempDir()
	writeSweep(t, dir, "sweepd-probe")
	ts := httptest.NewServer(newServer(dir, t.TempDir(), nil, true).routes())
	defer ts.Close()

	_, body := get(t, ts.URL+"/", nil)
	if !strings.Contains(string(body), "/debug/pprof/") {
		t.Errorf("-debug index misses pprof: %s", body)
	}
	resp, _ := get(t, ts.URL+"/debug/pprof/cmdline", nil)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline status %d", resp.StatusCode)
	}

	// Without -debug the same path falls through to the index 404.
	tsOff := httptest.NewServer(newServer(dir, t.TempDir(), nil, false).routes())
	defer tsOff.Close()
	if resp, _ := get(t, tsOff.URL+"/debug/pprof/cmdline", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof served without -debug: %d", resp.StatusCode)
	}
}

func TestWriteMethods405OnKnownRoutes404Elsewhere(t *testing.T) {
	ts, _ := newTestServer(t)
	do := func(method, path string) int {
		req, err := http.NewRequest(method, ts.URL+path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusMethodNotAllowed {
			if allow := resp.Header.Get("Allow"); allow != "GET, HEAD" {
				t.Errorf("%s %s: Allow %q", method, path, allow)
			}
		}
		return resp.StatusCode
	}
	for _, path := range []string{
		"/", "/healthz", "/api/catalogue", "/api/manifest", "/api/store",
		"/api/metrics", "/api/progress", "/outputs/whatever", "/bench/",
	} {
		if code := do(http.MethodPost, path); code != http.StatusMethodNotAllowed {
			t.Errorf("POST %s = %d, want 405", path, code)
		}
		if code := do(http.MethodDelete, path); code != http.StatusMethodNotAllowed {
			t.Errorf("DELETE %s = %d, want 405", path, code)
		}
	}
	for _, path := range []string{"/no/such/route", "/apix", "/debug/pprof/heap"} {
		if code := do(http.MethodPost, path); code != http.StatusNotFound {
			t.Errorf("POST %s = %d, want 404", path, code)
		}
	}
}
