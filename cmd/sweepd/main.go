// Command sweepd serves a sweep's results over HTTP — the
// heavy-traffic face of the experiment harness. It sits on the same
// output directory (and optional content-addressed result store) that
// cmd/experiments writes, configured through the same harness.Options
// flags, and serves:
//
//	/api/catalogue   the manifest as an API: every experiment, every
//	                 output with URL, typed kind, size and ETag
//	/api/manifest    raw manifest.json
//	/api/store       result-store summary (entries, bytes)
//	/api/metrics     telemetry: the sweep's metrics.json (written by
//	                 experiments -metrics) merged with this process's
//	                 live registry — Prometheus text exposition by
//	                 default, JSON under Accept: application/json
//	/api/progress    sweep completion: unit totals and computed-vs-
//	                 cached splits from the manifest and timings
//	/outputs/<file>  one study output, content type from its recorded
//	                 kind (raw/table: text/plain, plot: image/svg+xml)
//	/bench/          the committed BENCH_<n>.json perf snapshots
//	/healthz         liveness
//	/debug/pprof/    live profiling (only with -debug)
//
// Every output's ETag is the content hash the harness recorded in the
// manifest, so conditional GETs (If-None-Match) answer 304 without
// reading the file. The manifest is reloaded when it changes on disk:
// sweepd can keep serving while experiment processes shard new work
// into the same directory behind it.
//
// Usage:
//
//	sweepd [-addr :8080] [-out results] [-result-store dir]
//	       [-bench-dir .] [-debug] (plus the shared sweep flags)
package main

import (
	"flag"
	"log"
	"net/http"
	_ "net/http/pprof" // mounted under /debug/pprof/ only with -debug

	"repro/internal/harness"
	"repro/internal/metrics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweepd: ")

	opts := harness.DefaultOptions()
	opts.Bind(flag.CommandLine)
	var (
		addr     = flag.String("addr", ":8080", "HTTP listen address")
		benchDir = flag.String("bench-dir", ".", "directory of the committed BENCH_<n>.json snapshots")
		debug    = flag.Bool("debug", false, "expose net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	// Serving telemetry is the point of this process; no simulation runs
	// here, so there is no determinism contract to protect by gating.
	metrics.SetEnabled(true)

	opts, err := opts.Validate()
	if err != nil {
		log.Fatal(err)
	}
	var store *harness.ResultStore
	if opts.ResultStore != "" {
		if store, err = harness.NewResultStore(opts.ResultStore); err != nil {
			log.Fatal(err)
		}
	}

	s := newServer(opts.OutDir, *benchDir, store, *debug)
	if err := s.refresh(); err != nil {
		// Not fatal: the producer may not have written a manifest yet;
		// handlers answer 503 until one appears.
		log.Printf("%v", err)
	}
	log.Printf("serving %s on %s", opts.OutDir, *addr)
	log.Fatal(http.ListenAndServe(*addr, s.routes()))
}
