// Command sweepd serves a sweep's results over HTTP — the
// heavy-traffic face of the experiment harness. It sits on the same
// output directory (and optional content-addressed result store) that
// cmd/experiments writes, configured through the same harness.Options
// flags, and serves:
//
//	/api/catalogue   the manifest as an API: every experiment, every
//	                 output with URL, typed kind, size and ETag
//	/api/manifest    raw manifest.json
//	/api/store       result-store summary (entries, bytes)
//	/api/metrics     telemetry: the sweep's metrics.json (written by
//	                 experiments -metrics) merged with this process's
//	                 live registry — Prometheus text exposition by
//	                 default, JSON under Accept: application/json
//	/api/progress    sweep completion: unit totals and computed-vs-
//	                 cached splits from the manifest and timings
//	/outputs/<file>  one study output, content type from its recorded
//	                 kind (raw/table: text/plain, plot: image/svg+xml)
//	/bench/          the committed BENCH_<n>.json perf snapshots
//	/healthz         liveness (plain text)
//	/api/healthz     liveness + manifest state + uptime (JSON)
//	/debug/pprof/    live profiling (only with -debug)
//
// Every output's ETag is the content hash the harness recorded in the
// manifest, so conditional GETs (If-None-Match) answer 304 without
// reading the file. The manifest is reloaded when it changes on disk:
// sweepd can keep serving while experiment processes shard new work
// into the same directory behind it.
//
// The process is hardened for unattended serving: the http.Server
// carries read/write/idle timeouts, a panic in any handler answers 500
// (counted in sweepd_panics_total) instead of killing the process, and
// SIGTERM/SIGINT drain in-flight requests for up to -drain before the
// process exits cleanly.
//
// Usage:
//
//	sweepd [-addr :8080] [-out results] [-result-store dir]
//	       [-bench-dir .] [-drain 10s] [-debug] (plus the shared sweep flags)
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	_ "net/http/pprof" // mounted under /debug/pprof/ only with -debug
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/harness"
	"repro/internal/metrics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweepd: ")

	opts := harness.DefaultOptions()
	opts.Bind(flag.CommandLine)
	var (
		addr     = flag.String("addr", ":8080", "HTTP listen address")
		benchDir = flag.String("bench-dir", ".", "directory of the committed BENCH_<n>.json snapshots")
		debug    = flag.Bool("debug", false, "expose net/http/pprof under /debug/pprof/")
		drain    = flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline: on SIGTERM/SIGINT, in-flight requests get this long to finish")
	)
	flag.Parse()

	// Serving telemetry is the point of this process; no simulation runs
	// here, so there is no determinism contract to protect by gating.
	metrics.SetEnabled(true)

	opts, err := opts.Validate()
	if err != nil {
		log.Fatal(err)
	}
	var store *harness.ResultStore
	if opts.ResultStore != "" {
		if store, err = harness.NewResultStore(opts.ResultStore); err != nil {
			log.Fatal(err)
		}
	}

	s := newServer(opts.OutDir, *benchDir, store, *debug)
	if err := s.refresh(); err != nil {
		// Not fatal: the producer may not have written a manifest yet;
		// handlers answer 503 until one appears.
		log.Printf("%v", err)
	}
	// A configured server, not bare ListenAndServe: header/read/write/
	// idle timeouts bound what one slow or malicious client can hold, and
	// signal-driven Shutdown drains in-flight requests instead of
	// dropping them mid-body when the process is told to go.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.routes(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("serving %s on %s", opts.OutDir, *addr)
		errc <- srv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	select {
	case err := <-errc:
		// The listener died on its own (port taken, socket error).
		log.Fatal(err)
	case sig := <-sigc:
		log.Printf("%v: draining for up to %v", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			// Past the drain deadline: close what remains and report it.
			srv.Close()
			log.Fatalf("drain deadline exceeded: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
		log.Print("shutdown complete")
	}
}
