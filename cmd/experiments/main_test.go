package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/harness"
)

// TestCatalogueRegistered checks that every study of the paper's
// evaluation is registered in the expected `-exp all` order.
func TestCatalogueRegistered(t *testing.T) {
	want := []string{
		"table1", "batch", "selection", "apretx", "platoon", "download",
		"bitrate", "epidemic", "highway", "combining", "adaptive",
		"corridor", "ttl", "dynamics", "twoway", "trafficgrid", "stopgo",
		"cityscale", "citydemand",
	}
	names := harness.Names()
	byName := map[string]bool{}
	for _, n := range names {
		byName[n] = true
	}
	for _, w := range want {
		if !byName[w] {
			t.Fatalf("experiment %q not registered (have %v)", w, names)
		}
	}
	// The seed monolith's fixed order must be preserved as a prefix of
	// the registration order (test-only registrations may follow).
	idx := map[string]int{}
	for i, n := range names {
		idx[n] = i
	}
	for i := 1; i < len(want); i++ {
		if idx[want[i-1]] > idx[want[i]] {
			t.Fatalf("order: %s after %s", want[i-1], want[i])
		}
	}
	if _, ok := harness.Lookup("figures"); !ok {
		t.Fatal("alias figures not registered")
	}
}

// TestListCatalogue is the -list smoke test: the catalogue must name every
// registered study with its A<n> identifier and one-line description, so
// `experiments -list` is a usable index of the evaluation.
func TestListCatalogue(t *testing.T) {
	var buf strings.Builder
	printCatalogue(&buf)
	out := buf.String()
	for _, name := range harness.Names() {
		if !strings.Contains(out, name) {
			t.Errorf("catalogue misses study %q:\n%s", name, out)
		}
	}
	// Studies A1..A18 carry their identifier in the title.
	for i := 1; i <= 18; i++ {
		id := fmt.Sprintf("A%d:", i)
		if !strings.Contains(out, id) {
			t.Errorf("catalogue misses %s", id)
		}
	}
	if !strings.Contains(out, "figures") {
		t.Error("catalogue misses the figures alias")
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "  ") && len(strings.Fields(line)) < 2 {
			t.Errorf("catalogue entry without description: %q", line)
		}
	}
}

// TestHarnessSmoke runs one tiny experiment end-to-end into a temp dir
// and checks the report, the .dat series and the manifest all exist and
// parse — the full write path of the harness.
func TestHarnessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation rounds in -short mode")
	}
	dir := t.TempDir()
	runner, err := harness.NewRunner(harness.Options{
		Rounds: 2,
		Seed:   1,
		OutDir: dir,
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := runner.Run([]string{"table1"}); err != nil {
		t.Fatal(err)
	}

	report, err := os.ReadFile(filepath.Join(dir, "table1.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(report), "car") {
		t.Fatalf("table1.txt does not look like the report:\n%s", report)
	}

	dat, err := os.ReadFile(filepath.Join(dir, "fig3.dat"))
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(dat)), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		if len(strings.Fields(line)) < 2 {
			t.Fatalf("fig3.dat line %q is not gnuplot columns", line)
		}
	}

	m, err := harness.ReadManifest(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Experiments) != 1 || m.Experiments[0].Name != "table1" {
		t.Fatalf("manifest experiments = %+v", m.Experiments)
	}
	rec := m.Experiments[0]
	if rec.Units != 2 {
		t.Fatalf("units = %d, want one per round", rec.Units)
	}
	if rec.Error != "" {
		t.Fatalf("recorded error: %s", rec.Error)
	}
	for _, out := range rec.Outputs {
		if _, err := os.Stat(filepath.Join(dir, out.File)); err != nil {
			t.Fatalf("manifest lists %s but: %v", out.File, err)
		}
	}
	if len(rec.Outputs) < 10 {
		t.Fatalf("only %d outputs recorded", len(rec.Outputs))
	}
}

// TestWorkerCountInvariance is the CLI-level determinism check: the same
// experiment with 1 and 3 workers must produce byte-identical outputs.
func TestWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation rounds in -short mode")
	}
	run := func(workers int) map[string]string {
		dir := t.TempDir()
		runner, err := harness.NewRunner(harness.Options{
			Rounds: 2, Seed: 5, OutDir: dir, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := runner.Run([]string{"highway"}); err != nil {
			t.Fatal(err)
		}
		out := map[string]string{}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.Name() == "timings.json" {
				continue // the provenance sidecar holds wall-clock timings
			}
			// manifest.json stays in: since the schema-2 split it is a
			// pure function of the run's inputs, worker count included.
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			out[e.Name()] = string(data)
		}
		return out
	}
	serial := run(1)
	parallel := run(3)
	if len(serial) == 0 {
		t.Fatal("no outputs")
	}
	for name, want := range serial {
		if got, ok := parallel[name]; !ok {
			t.Errorf("%s missing from parallel run", name)
		} else if got != want {
			t.Errorf("%s differs between 1 and 3 workers", name)
		}
	}
}
