// Command experiments regenerates every table and figure of the paper's
// evaluation, plus the ablation and extension studies, through the
// internal/harness orchestration layer: each study is a registered
// experiment that decomposes into independent (scenario, parameter-point,
// round) work units executed on a worker pool. Per-unit RNG seeds derive
// from the root seed alone, so any worker count produces byte-identical
// outputs.
//
// Usage:
//
//	experiments [-exp all|<name>[,<name>...]] [-rounds 30] [-seed 1]
//	            [-out results] [-workers N] [-list]
//	            [-result-store dir] [-code-digest id]
//	            [-traffic-store dir] [-traffic-store-cap bytes]
//	            [-metrics] [-progress]
//	            [-cpuprofile file] [-memprofile file]
//
// Outputs are written to the -out directory as plain-text reports,
// gnuplot-ready .dat series and SVG figures, plus a machine-readable
// manifest.json describing every experiment, seed and output file and a
// timings.json sidecar with run provenance. The shared sweep flags
// (rounds, seed, out, workers, stores) are bound from harness.Options,
// the same struct cmd/sweepd binds, so both binaries configure one way.
//
// -result-store points work-unit resolution at a content-addressed
// on-disk store of unit results keyed by root seed, unit identity and
// config/code digests: re-running a sweep only computes units whose key
// changed, an interrupted sweep resumes where it stopped, and several
// processes shard one sweep by sharing the directory.
//
// -traffic-store points the traffic scenarios' record-once-replay-many
// path at an on-disk precomputed-trace store: the first run of a sweep
// records each traffic world, every later run (any process) loads it.
//
// -metrics enables the telemetry registry (internal/metrics): simulator,
// cache and store counters accumulate across the run and a metrics.json
// snapshot lands beside timings.json. Enabling it never changes a byte
// of any trace, report or the manifest (test-enforced). -progress
// (implies -metrics) adds a once-a-second stderr ticker with live unit
// counts. -cpuprofile/-memprofile wrap the whole run in pprof profiling,
// the hook for hunting sweep-serving regressions.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/scenario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	opts := harness.DefaultOptions()
	opts.Bind(flag.CommandLine)
	var (
		exp        = flag.String("exp", "all", "experiments to run: all, or a comma-separated list of names")
		list       = flag.Bool("list", false, "print the experiment catalogue and exit")
		progress   = flag.Bool("progress", false, "print live unit progress to stderr once a second (implies -metrics)")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
		memProfile = flag.String("memprofile", "", "write a pprof allocation profile at the end of the run to this file")
	)
	flag.Parse()

	if *list {
		printCatalogue(os.Stdout)
		return
	}

	// Everything fallible runs inside run(): log.Fatal calls os.Exit,
	// which would skip the profiling defers and leave a truncated
	// cpu.pprof / missing mem.pprof on the very failing sweeps the
	// profiling mode exists to debug.
	if err := run(*exp, opts, *progress, *cpuProfile, *memProfile); err != nil {
		log.Fatal(err)
	}
}

func run(exp string, opts harness.Options, progress bool, cpuProfile, memProfile string) (err error) {
	opts.Logf = log.Printf
	if progress {
		opts.Metrics = true
	}
	if opts.TrafficStore != "" {
		if err := scenario.SetTrafficTraceStore(opts.TrafficStore, opts.TrafficStoreCap); err != nil {
			return err
		}
	}
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if memProfile != "" {
		defer func() {
			f, ferr := os.Create(memProfile)
			if ferr != nil {
				if err == nil {
					err = ferr
				}
				return
			}
			defer f.Close()
			runtime.GC() // materialise the final live set
			if werr := pprof.WriteHeapProfile(f); werr != nil && err == nil {
				err = werr
			}
		}()
	}

	runner, err := harness.NewRunner(opts)
	if err != nil {
		return err
	}

	names := harness.Names()
	if exp != "all" {
		names = names[:0]
		for _, name := range strings.Split(exp, ",") {
			if name = strings.TrimSpace(name); name != "" {
				names = append(names, name)
			}
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("no experiments selected by -exp %q", exp)
	}
	if progress {
		stop := startProgressTicker(os.Stderr, runner, time.Second)
		defer stop()
	}
	return runner.Run(names)
}

// startProgressTicker prints the runner's live unit counters to w at
// every interval until the returned stop function runs. Lines only
// appear once units exist and then whenever the counts move, so an idle
// setup phase stays quiet. The final state is printed at stop, so short
// sweeps still report their totals.
func startProgressTicker(w io.Writer, runner *harness.Runner, interval time.Duration) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		var last harness.Progress
		emit := func() {
			p := runner.Progress()
			if p == last || p.UnitsTotal == 0 {
				return
			}
			last = p
			fmt.Fprintf(w, "progress: %d/%d units (%d computed, %d cached)\n",
				p.UnitsDone, p.UnitsTotal, p.UnitsComputed, p.UnitsCached)
		}
		for {
			select {
			case <-t.C:
				emit()
			case <-done:
				emit()
				return
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// printCatalogue renders the registry as the experiment catalogue: one
// line per study with its CLI name, aliases and the "A<n>: ..." title.
func printCatalogue(w io.Writer) {
	fmt.Fprintln(w, "Registered experiments (run order under -exp all):")
	fmt.Fprintln(w)
	for _, e := range harness.Experiments() {
		name := e.Name
		if len(e.Aliases) > 0 {
			name += " (" + strings.Join(e.Aliases, ", ") + ")"
		}
		fmt.Fprintf(w, "  %-22s %s\n", name, e.Title)
	}
}
