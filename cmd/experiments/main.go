// Command experiments regenerates every table and figure of the paper's
// evaluation, plus the ablation and extension studies, through the
// internal/harness orchestration layer: each study is a registered
// experiment that decomposes into independent (scenario, parameter-point,
// round) work units executed on a worker pool. Per-unit RNG seeds derive
// from the root seed alone, so any worker count produces byte-identical
// outputs.
//
// Usage:
//
//	experiments [-exp all|<name>[,<name>...]] [-rounds 30] [-seed 1]
//	            [-out results] [-workers N] [-list]
//	            [-traffic-store dir] [-traffic-store-cap bytes]
//	            [-cpuprofile file] [-memprofile file]
//
// Outputs are written to the -out directory as plain-text reports,
// gnuplot-ready .dat series and SVG figures, plus a machine-readable
// manifest.json describing every experiment, seed and output file.
//
// -traffic-store points the traffic scenarios' record-once-replay-many
// path at an on-disk precomputed-trace store: the first run of a sweep
// records each traffic world, every later run (any process) loads it.
// -cpuprofile/-memprofile wrap the whole run in pprof profiling, the
// hook for hunting sweep-serving regressions.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/harness"
	"repro/internal/scenario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		exp          = flag.String("exp", "all", "experiments to run: all, or a comma-separated list of names")
		rounds       = flag.Int("rounds", 30, "rounds for the canonical testbed experiments")
		seed         = flag.Int64("seed", 1, "root random seed")
		out          = flag.String("out", "results", "output directory")
		workers      = flag.Int("workers", 0, "concurrent work units (0: GOMAXPROCS)")
		list         = flag.Bool("list", false, "print the experiment catalogue and exit")
		trafficStore = flag.String("traffic-store", "", "directory of the on-disk precomputed traffic-trace store (empty: in-memory cache only)")
		storeCap     = flag.Int64("traffic-store-cap", 0, "byte budget of the traffic-trace store: least-recently-used traces are evicted past it (0: unbounded)")
		cpuProfile   = flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
		memProfile   = flag.String("memprofile", "", "write a pprof allocation profile at the end of the run to this file")
	)
	flag.Parse()

	if *list {
		printCatalogue(os.Stdout)
		return
	}

	// Everything fallible runs inside run(): log.Fatal calls os.Exit,
	// which would skip the profiling defers and leave a truncated
	// cpu.pprof / missing mem.pprof on the very failing sweeps the
	// profiling mode exists to debug.
	if err := run(*exp, *rounds, *seed, *out, *workers, *trafficStore, *storeCap, *cpuProfile, *memProfile); err != nil {
		log.Fatal(err)
	}
}

func run(exp string, rounds int, seed int64, out string, workers int, trafficStore string, storeCap int64, cpuProfile, memProfile string) (err error) {
	if trafficStore != "" {
		if err := scenario.SetTrafficTraceStore(trafficStore, storeCap); err != nil {
			return err
		}
	}
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if memProfile != "" {
		defer func() {
			f, ferr := os.Create(memProfile)
			if ferr != nil {
				if err == nil {
					err = ferr
				}
				return
			}
			defer f.Close()
			runtime.GC() // materialise the final live set
			if werr := pprof.WriteHeapProfile(f); werr != nil && err == nil {
				err = werr
			}
		}()
	}

	runner, err := harness.NewRunner(harness.Config{
		Rounds:  rounds,
		Seed:    seed,
		OutDir:  out,
		Workers: workers,
		Logf:    log.Printf,
	})
	if err != nil {
		return err
	}

	names := harness.Names()
	if exp != "all" {
		names = names[:0]
		for _, name := range strings.Split(exp, ",") {
			if name = strings.TrimSpace(name); name != "" {
				names = append(names, name)
			}
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("no experiments selected by -exp %q", exp)
	}
	return runner.Run(names)
}

// printCatalogue renders the registry as the experiment catalogue: one
// line per study with its CLI name, aliases and the "A<n>: ..." title.
func printCatalogue(w io.Writer) {
	fmt.Fprintln(w, "Registered experiments (run order under -exp all):")
	fmt.Fprintln(w)
	for _, e := range harness.Experiments() {
		name := e.Name
		if len(e.Aliases) > 0 {
			name += " (" + strings.Join(e.Aliases, ", ") + ")"
		}
		fmt.Fprintf(w, "  %-22s %s\n", name, e.Title)
	}
}
