// Command experiments regenerates every table and figure of the paper's
// evaluation, plus the ablation and extension studies listed in DESIGN.md.
//
// Usage:
//
//	experiments [-exp all|table1|figures|batch|selection|apretx|platoon|
//	             download|bitrate|epidemic|highway|combining|adaptive|
//	             corridor|ttl|dynamics]
//	            [-rounds 30] [-seed 1] [-out results]
//
// Outputs are written to the -out directory as plain-text reports plus
// gnuplot-ready .dat series for each figure.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/baseline"
	"repro/internal/carq"
	"repro/internal/mac"
	"repro/internal/packet"
	"repro/internal/plot"
	"repro/internal/radio"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		exp    = flag.String("exp", "all", "experiment to run (all, table1, figures, batch, selection, apretx, platoon, download, bitrate, epidemic, highway)")
		rounds = flag.Int("rounds", 30, "rounds for the canonical testbed experiments")
		seed   = flag.Int64("seed", 1, "root random seed")
		out    = flag.String("out", "results", "output directory")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("creating %s: %v", *out, err)
	}
	r := runner{rounds: *rounds, seed: *seed, out: *out}

	all := map[string]func() error{
		"table1":    r.table1AndFigures, // table1 and figures share one run
		"figures":   r.table1AndFigures,
		"batch":     r.batchAblation,
		"selection": r.selectionAblation,
		"apretx":    r.apRetxAblation,
		"platoon":   r.platoonSweep,
		"download":  r.download,
		"bitrate":   r.bitrateSweep,
		"epidemic":  r.epidemicComparison,
		"highway":   r.highwaySweep,
		"combining": r.frameCombining,
		"adaptive":  r.adaptiveRepeats,
		"corridor":  r.corridor,
		"ttl":       r.recruitmentTTL,
		"dynamics":  r.recoveryDynamics,
	}

	switch *exp {
	case "all":
		// Fixed order; table1AndFigures once.
		for _, name := range []string{"table1", "batch", "selection", "apretx", "platoon", "download", "bitrate", "epidemic", "highway", "combining", "adaptive", "corridor", "ttl", "dynamics"} {
			if err := all[name](); err != nil {
				log.Fatalf("%s: %v", name, err)
			}
		}
	default:
		fn, ok := all[*exp]
		if !ok {
			log.Fatalf("unknown experiment %q", *exp)
		}
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", *exp, err)
		}
	}
}

type runner struct {
	rounds int
	seed   int64
	out    string
}

func (r runner) write(name, content string) error {
	path := filepath.Join(r.out, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	log.Printf("wrote %s", path)
	return nil
}

// table1AndFigures runs the canonical urban testbed once and regenerates
// Table 1 and Figures 3-8 from the same traces, exactly as the paper
// post-processed one set of captures.
func (r runner) table1AndFigures() error {
	cfg := scenario.DefaultTestbed()
	cfg.Rounds = r.rounds
	cfg.Seed = r.seed
	cfg.Parallel = true
	res, err := scenario.RunTestbed(cfg)
	if err != nil {
		return err
	}

	if err := r.write("table1.txt", report.Table1(res)); err != nil {
		return err
	}
	// The reproduction's Figure 2: the testbed map.
	if err := r.write("fig2_map.svg", report.TestbedMapSVG()); err != nil {
		return err
	}

	for i, flow := range res.CarIDs {
		fig, err := report.NewReceptionFigure(res.Rounds, res.CarIDs, flow)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("fig%d", 3+i)
		if err := r.write(name+".txt", fig.String()); err != nil {
			return err
		}
		if err := r.write(name+".dat", fig.GnuplotData()); err != nil {
			return err
		}
		if err := r.write(name+".svg", fig.SVG()); err != nil {
			return err
		}
	}
	for i, car := range res.CarIDs {
		fig, err := report.NewCoopFigure(res.Rounds, res.CarIDs, car)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("fig%d", 6+i)
		if err := r.write(name+".txt", fig.String()); err != nil {
			return err
		}
		if err := r.write(name+".dat", fig.GnuplotData()); err != nil {
			return err
		}
		if err := r.write(name+".svg", fig.SVG()); err != nil {
			return err
		}
	}
	return nil
}

// batchAblation compares per-packet REQUESTs with the paper's proposed
// batched-REQUEST optimisation: overhead and recovery latency.
func (r runner) batchAblation() error {
	var b strings.Builder
	b.WriteString("A1: batched REQUEST (all missing seqs in one frame) vs per-packet REQUEST\n\n")
	for _, batch := range []bool{false, true} {
		cfg := scenario.DefaultTestbed()
		cfg.Rounds = min(r.rounds, 10)
		cfg.Seed = r.seed
		cfg.BatchRequests = batch
		res, err := scenario.RunTestbed(cfg)
		if err != nil {
			return err
		}
		name := "per-packet"
		if batch {
			name = "batched"
		}
		b.WriteString(report.FormatOverhead(name, report.OverheadSummary(res.Rounds)))
		rows := report.Table1Rows(res)
		var lat []float64
		for _, car := range res.CarIDs {
			lat = append(lat, analysis.LastRecoveryLatencies(res.Rounds, car)...)
		}
		fmt.Fprintf(&b, "%-24s post-coop loss: car1=%.1f%% car2=%.1f%% car3=%.1f%%  mean recovery latency=%.2fs (n=%d)\n\n",
			"", rows[0].LostAfterPct(), rows[1].LostAfterPct(), rows[2].LostAfterPct(),
			stats.Mean(lat), len(lat))
	}
	return r.write("ablation_batch.txt", b.String())
}

// selectionAblation compares cooperator-selection policies (the paper's
// future-work question).
func (r runner) selectionAblation() error {
	var b strings.Builder
	b.WriteString("A2: cooperator selection policy\n\n")
	for _, tc := range []struct {
		name string
		sel  carq.Selection
	}{
		{"all one-hop (paper)", carq.SelectAll{}},
		{"best-1 by signal", carq.SelectBestK{K: 1}},
		{"best-2 by signal", carq.SelectBestK{K: 2}},
		{"freshest-1", carq.SelectFreshestK{K: 1}},
	} {
		cfg := scenario.DefaultTestbed()
		cfg.Rounds = min(r.rounds, 10)
		cfg.Seed = r.seed
		cfg.Selection = tc.sel
		res, err := scenario.RunTestbed(cfg)
		if err != nil {
			return err
		}
		rows := report.Table1Rows(res)
		var post, impr float64
		for _, row := range rows {
			post += row.LostAfterPct()
			impr += row.Improvement()
		}
		o := report.OverheadSummary(res.Rounds)
		fmt.Fprintf(&b, "%-22s mean post-coop loss=%.1f%% mean improvement=%.2f responses=%d\n",
			tc.name, post/float64(len(rows)), impr/float64(len(rows)), o.ResponseTx)
	}
	return r.write("ablation_selection.txt", b.String())
}

// apRetxAblation compares pure C-ARQ with spending coverage time on
// AP-side retransmissions.
func (r runner) apRetxAblation() error {
	var b strings.Builder
	b.WriteString("A3: AP-side retransmissions vs pure C-ARQ\n")
	b.WriteString("(repeats>1 divides the AP's new-data budget; distinct packets delivered per pass matter)\n\n")
	for _, tc := range []struct {
		name    string
		repeats int
		coop    bool
	}{
		{"no-coop, 1x", 1, false},
		{"no-coop, 2x repeats", 2, false},
		{"no-coop, 3x repeats", 3, false},
		{"C-ARQ,  1x (paper)", 1, true},
	} {
		cfg := scenario.DefaultTestbed()
		cfg.Rounds = min(r.rounds, 10)
		cfg.Seed = r.seed
		cfg.APRepeats = tc.repeats
		cfg.Coop = tc.coop
		res, err := scenario.RunTestbed(cfg)
		if err != nil {
			return err
		}
		// Distinct packets held at the end per car per round, and the
		// AP airtime spent. With repeats the AP sends the same seq
		// several times, so "held" must be compared against distinct
		// seqs offered.
		var held, offered float64
		for _, round := range res.Rounds {
			for _, car := range res.CarIDs {
				held += float64(len(round.HeldSet(car)))
				offered += float64(len(round.DataSentSeqs(car)))
			}
		}
		n := float64(len(res.Rounds) * len(res.CarIDs))
		fmt.Fprintf(&b, "%-22s distinct held/car/round=%.1f of %.1f offered (%.1f%%)\n",
			tc.name, held/n, offered/n, 100*held/offered)
	}
	return r.write("ablation_apretx.txt", b.String())
}

// platoonSweep measures residual loss versus platoon size (diversity).
func (r runner) platoonSweep() error {
	var b strings.Builder
	b.WriteString("A4: platoon size sweep — cooperative diversity vs residual loss\n\n")
	b.WriteString("cars  pre-coop%%  post-coop%%  improvement\n")
	var dat strings.Builder
	dat.WriteString("# cars pre post\n")
	for cars := 1; cars <= 6; cars++ {
		cfg := scenario.DefaultTestbed()
		cfg.Rounds = min(r.rounds, 8)
		cfg.Seed = r.seed
		cfg.Cars = cars
		res, err := scenario.RunTestbed(cfg)
		if err != nil {
			return err
		}
		rows := report.Table1Rows(res)
		var pre, post float64
		for _, row := range rows {
			pre += row.LostBeforePct()
			post += row.LostAfterPct()
		}
		pre /= float64(len(rows))
		post /= float64(len(rows))
		impr := 0.0
		if pre > 0 {
			impr = 1 - post/pre
		}
		fmt.Fprintf(&b, "%4d  %9.1f  %10.1f  %11.2f\n", cars, pre, post, impr)
		fmt.Fprintf(&dat, "%d %g %g\n", cars, pre, post)
	}
	if err := r.write("ext_platoon.dat", dat.String()); err != nil {
		return err
	}
	return r.write("ext_platoon.txt", b.String())
}

// download measures AP visits needed to assemble a file, with and without
// cooperation (the paper's headline future-work metric).
func (r runner) download() error {
	var b strings.Builder
	b.WriteString("A5: AP visits to download a file (220 blocks/car)\n\n")
	for _, coop := range []bool{false, true} {
		cfg := scenario.DefaultDownload()
		cfg.Seed = r.seed
		cfg.Coop = coop
		res, err := scenario.RunDownload(cfg)
		if err != nil {
			return err
		}
		mode := "no-coop"
		if coop {
			mode = "C-ARQ"
		}
		for _, c := range res.Cars {
			fmt.Fprintf(&b, "%-8s car %v: completed=%v visits=%d time=%v blocks=%d/%d\n",
				mode, c.Car, c.Completed, c.Visits, c.CompletionTime.Round(time.Second), c.Blocks, cfg.FileBlocks)
		}
		b.WriteString("\n")
	}
	return r.write("ext_download.txt", b.String())
}

// bitrateSweep asks the paper's "can C-ARQ let the AP use a higher bit
// rate?" question.
func (r runner) bitrateSweep() error {
	var b strings.Builder
	b.WriteString("A6: AP bit-rate sweep — losses grow with rate; does C-ARQ keep delivery ahead?\n\n")
	b.WriteString("rate              pre-coop%%  post-coop%%  delivered/car/round\n")
	for _, mod := range radio.Modulations() {
		cfg := scenario.DefaultTestbed()
		cfg.Rounds = min(r.rounds, 8)
		cfg.Seed = r.seed
		cfg.Modulation = mod
		// Higher PHY rates free airtime; keep the packet rate fixed so
		// the comparison isolates the PER effect.
		res, err := scenario.RunTestbed(cfg)
		if err != nil {
			return err
		}
		rows := report.Table1Rows(res)
		var pre, post, delivered float64
		for _, row := range rows {
			pre += row.LostBeforePct()
			post += row.LostAfterPct()
			delivered += row.TxByAP.Mean() * (1 - row.LostAfterPct()/100)
		}
		n := float64(len(rows))
		fmt.Fprintf(&b, "%-17s %9.1f  %10.1f  %19.1f\n", mod.Name, pre/n, post/n, delivered/n)
	}
	return r.write("ext_bitrate.txt", b.String())
}

// epidemicComparison pits C-ARQ against push-based epidemic flooding.
func (r runner) epidemicComparison() error {
	var b strings.Builder
	b.WriteString("A7: C-ARQ vs epidemic flooding in the dark area\n\n")

	run := func(name string, factory scenario.NodeFactory, coop bool) error {
		cfg := scenario.DefaultTestbed()
		cfg.Rounds = min(r.rounds, 8)
		cfg.Seed = r.seed
		cfg.Coop = coop
		cfg.Factory = factory
		res, err := scenario.RunTestbed(cfg)
		if err != nil {
			return err
		}
		rows := report.Table1Rows(res)
		var post float64
		for _, row := range rows {
			post += row.LostAfterPct()
		}
		o := report.OverheadSummary(res.Rounds)
		fmt.Fprintf(&b, "%-10s mean residual loss=%.1f%%  recovery transmissions=%d (%d B)\n",
			name, post/float64(len(rows)), o.ResponseTx+o.RequestTx, o.ResponseBytes+o.RequestBytes)
		return nil
	}

	if err := run("C-ARQ", nil, true); err != nil {
		return err
	}
	epidemicFactory := func(id packet.NodeID, engine *sim.Engine, port *mac.Station, seed int64, obs carq.Observer) (scenario.Node, error) {
		return baseline.NewEpidemicNode(
			baseline.DefaultEpidemicConfig(id), engine, port,
			sim.Stream(seed, fmt.Sprintf("epidemic-%v", id)), obs)
	}
	if err := run("epidemic", epidemicFactory, true); err != nil {
		return err
	}
	return r.write("ext_epidemic.txt", b.String())
}

// frameCombining evaluates the C-ARQ/FC extension (reference [12]): soft
// combining of corrupted copies, in its natural regime of AP repeats.
func (r runner) frameCombining() error {
	var b strings.Builder
	b.WriteString("A9: frame combining (C-ARQ/FC, reference [12])\n")
	b.WriteString("Soft copies only exist when packets air more than once, so FC is paired with AP repeats.\n\n")
	for _, tc := range []struct {
		name    string
		repeats int
		fc      bool
	}{
		{"C-ARQ, 1x, no FC", 1, false},
		{"C-ARQ, 2x, no FC", 2, false},
		{"C-ARQ, 2x, FC", 2, true},
	} {
		cfg := scenario.DefaultTestbed()
		cfg.Rounds = min(r.rounds, 10)
		cfg.Seed = r.seed
		cfg.APRepeats = tc.repeats
		cfg.FrameCombining = tc.fc
		res, err := scenario.RunTestbed(cfg)
		if err != nil {
			return err
		}
		rows := report.Table1Rows(res)
		var pre, post float64
		for _, row := range rows {
			pre += row.LostBeforePct()
			post += row.LostAfterPct()
		}
		n := float64(len(rows))
		fmt.Fprintf(&b, "%-20s mean pre-coop=%.1f%%  mean post-coop=%.1f%%\n", tc.name, pre/n, post/n)
	}
	return r.write("ext_combining.txt", b.String())
}

// adaptiveRepeats evaluates the cooperator-adaptive AP retransmission
// scheme the paper's §3.2 leaves as future work, across platoon sizes.
func (r runner) adaptiveRepeats() error {
	var b strings.Builder
	b.WriteString("A10: cooperator-adaptive AP retransmissions (paper §3.2 future work)\n")
	b.WriteString("The AP overhears HELLOs and repeats more for poorly-connected cars.\n\n")
	b.WriteString("cars  policy        post-coop%%\n")
	for _, cars := range []int{1, 3} {
		for _, tc := range []struct {
			name     string
			adaptive int
			static_  int
		}{
			{"static 1x", 0, 1},
			{"adaptive<=3", 3, 1},
		} {
			cfg := scenario.DefaultTestbed()
			cfg.Rounds = min(r.rounds, 8)
			cfg.Seed = r.seed
			cfg.Cars = cars
			cfg.APRepeats = tc.static_
			cfg.AdaptiveAPRepeats = tc.adaptive
			res, err := scenario.RunTestbed(cfg)
			if err != nil {
				return err
			}
			rows := report.Table1Rows(res)
			var post float64
			for _, row := range rows {
				post += row.LostAfterPct()
			}
			fmt.Fprintf(&b, "%4d  %-12s %10.1f\n", cars, tc.name, post/float64(len(rows)))
		}
	}
	return r.write("ext_adaptive.txt", b.String())
}

// corridor evaluates the Figure-1 multi-Infostation deployment: coverage
// efficiency (held fraction of the receivable stream) with and without
// cooperation.
func (r runner) corridor() error {
	var b strings.Builder
	b.WriteString("A11: multi-Infostation corridor (the paper's Figure 1 deployment)\n\n")
	for _, coop := range []bool{false, true} {
		cfg := scenario.DefaultCorridor()
		cfg.Rounds = min(r.rounds, 8)
		cfg.Seed = r.seed
		cfg.Coop = coop
		res, err := scenario.RunCorridor(cfg)
		if err != nil {
			return err
		}
		mode := "no-coop"
		if coop {
			mode = "C-ARQ"
		}
		for _, car := range res.CarIDs {
			eff := analysis.CoverageEfficiency(res.Rounds, car, res.CarIDs)
			fmt.Fprintf(&b, "%-8s car %v: coverage efficiency %.3f\n", mode, car, eff)
		}
		b.WriteString("\n")
	}
	return r.write("ext_corridor.txt", b.String())
}

// recruitmentTTL sweeps the cooperator staleness timeout. The default
// 3-beacon TTL lets shadowing fades on the platoon's weakest link (car 1
// <-> car 3) evict recruitments mid-coverage, so stretches of overheard
// packets are never buffered — the mechanism behind the tail car's
// optimality gap in Figure 8. Longer TTLs nearly close it.
func (r runner) recruitmentTTL() error {
	var b strings.Builder
	b.WriteString("A12: cooperator recruitment TTL vs the tail car's optimality gap\n\n")
	b.WriteString("TTL    car3 mean gap   car3 post-coop%%\n")
	for _, ttl := range []time.Duration{3 * time.Second, 5 * time.Second, 8 * time.Second, 20 * time.Second} {
		ttl := ttl
		cfg := scenario.DefaultTestbed()
		cfg.Rounds = min(r.rounds, 10)
		cfg.Seed = r.seed
		cfg.TuneCarq = func(c *carq.Config) { c.CandidateTTL = ttl }
		res, err := scenario.RunTestbed(cfg)
		if err != nil {
			return err
		}
		lo, hi, ok := analysis.Window(res.Rounds, 3, res.CarIDs)
		if !ok {
			return fmt.Errorf("no window for car 3")
		}
		after := analysis.AfterCoopSeries(res.Rounds, 3, lo, hi)
		joint := analysis.JointSeries(res.Rounds, 3, res.CarIDs, lo, hi)
		_, meanGap := analysis.OptimalityGap(after, joint)
		rows := report.Table1Rows(res)
		fmt.Fprintf(&b, "%-6v %13.4f %17.1f\n", ttl, meanGap, rows[2].LostAfterPct())
	}
	return r.write("ablation_ttl.txt", b.String())
}

// recoveryDynamics renders how each car's missing list drains during the
// Cooperative-ARQ phase — per-packet REQUEST cycling versus the batched
// optimisation, on the same round.
func (r runner) recoveryDynamics() error {
	run := func(batch bool) (*scenario.TestbedResult, error) {
		cfg := scenario.DefaultTestbed()
		cfg.Rounds = 1
		cfg.Seed = r.seed
		cfg.BatchRequests = batch
		return scenario.RunTestbed(cfg)
	}
	perPacket, err := run(false)
	if err != nil {
		return err
	}
	batched, err := run(true)
	if err != nil {
		return err
	}
	var series []*stats.Series
	var b strings.Builder
	b.WriteString("A13: recovery dynamics — missing packets vs time in the Cooperative-ARQ phase\n\n")
	for _, tc := range []struct {
		name string
		res  *scenario.TestbedResult
	}{
		{"per-packet", perPacket},
		{"batched", batched},
	} {
		for _, car := range tc.res.CarIDs {
			s := analysis.RecoveryDynamics(tc.res.Rounds[0], car)
			if s.Len() == 0 {
				continue
			}
			s.Name = fmt.Sprintf("car %v (%s)", car, tc.name)
			series = append(series, s)
			half := analysis.HalfRecoveryTime(tc.res.Rounds[0], car)
			fmt.Fprintf(&b, "%-22s initial missing=%3.0f  final=%3.0f  half-recovery=%.1fs\n",
				s.Name, s.Y[0], s.Y[s.Len()-1], half)
		}
	}
	chart := plot.Chart{
		Title:  "Missing packets during the Cooperative-ARQ phase",
		XLabel: "Seconds since phase entry",
		YLabel: "Missing packets",
		Series: series,
	}
	// Derive the Y range from the data (counts, not probabilities).
	var maxY float64
	for _, s := range series {
		for _, y := range s.Y {
			if y > maxY {
				maxY = y
			}
		}
	}
	chart.YMin, chart.YMax = 0, maxY*1.05
	if err := r.write("ext_dynamics.svg", chart.SVG()); err != nil {
		return err
	}
	var dat strings.Builder
	for _, s := range series {
		dat.WriteString(s.GnuplotData())
		dat.WriteString("\n\n")
	}
	if err := r.write("ext_dynamics.dat", dat.String()); err != nil {
		return err
	}
	return r.write("ext_dynamics.txt", b.String())
}

// highwaySweep reproduces the drive-thru loss-versus-speed relationship.
func (r runner) highwaySweep() error {
	var b strings.Builder
	b.WriteString("A8: highway drive-thru — per-pass packet budget and losses vs speed\n\n")
	b.WriteString("speed(km/h)  window(pkts)  pre-coop%%  post-coop%%\n")
	var dat strings.Builder
	dat.WriteString("# kmh window pre post\n")
	for _, kmh := range []float64{30, 60, 90, 120} {
		cfg := scenario.DefaultHighway()
		cfg.Rounds = min(r.rounds, 6)
		cfg.Seed = r.seed
		cfg.SpeedMPS = kmh / 3.6
		res, err := scenario.RunHighway(cfg)
		if err != nil {
			return err
		}
		rows := report.Table1Rows(&scenario.TestbedResult{Rounds: res.Rounds, CarIDs: res.CarIDs})
		var tx, pre, post float64
		for _, row := range rows {
			tx += row.TxByAP.Mean()
			pre += row.LostBeforePct()
			post += row.LostAfterPct()
		}
		n := float64(len(rows))
		fmt.Fprintf(&b, "%11.0f  %12.0f  %9.1f  %10.1f\n", kmh, tx/n, pre/n, post/n)
		fmt.Fprintf(&dat, "%g %g %g %g\n", kmh, tx/n, pre/n, post/n)
	}
	if err := r.write("ext_highway.dat", dat.String()); err != nil {
		return err
	}
	return r.write("ext_highway.txt", b.String())
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
