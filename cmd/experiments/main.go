// Command experiments regenerates every table and figure of the paper's
// evaluation, plus the ablation and extension studies, through the
// internal/harness orchestration layer: each study is a registered
// experiment that decomposes into independent (scenario, parameter-point,
// round) work units executed on a worker pool. Per-unit RNG seeds derive
// from the root seed alone, so any worker count produces byte-identical
// outputs.
//
// Usage:
//
//	experiments [-exp all|<name>[,<name>...]] [-rounds 30] [-seed 1]
//	            [-out results] [-workers N] [-list]
//
// Outputs are written to the -out directory as plain-text reports,
// gnuplot-ready .dat series and SVG figures, plus a machine-readable
// manifest.json describing every experiment, seed and output file.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"repro/internal/harness"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		exp     = flag.String("exp", "all", "experiments to run: all, or a comma-separated list of names")
		rounds  = flag.Int("rounds", 30, "rounds for the canonical testbed experiments")
		seed    = flag.Int64("seed", 1, "root random seed")
		out     = flag.String("out", "results", "output directory")
		workers = flag.Int("workers", 0, "concurrent work units (0: GOMAXPROCS)")
		list    = flag.Bool("list", false, "print the experiment catalogue and exit")
	)
	flag.Parse()

	if *list {
		printCatalogue(os.Stdout)
		return
	}

	runner, err := harness.NewRunner(harness.Config{
		Rounds:  *rounds,
		Seed:    *seed,
		OutDir:  *out,
		Workers: *workers,
		Logf:    log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	names := harness.Names()
	if *exp != "all" {
		names = names[:0]
		for _, name := range strings.Split(*exp, ",") {
			if name = strings.TrimSpace(name); name != "" {
				names = append(names, name)
			}
		}
	}
	if len(names) == 0 {
		log.Fatalf("no experiments selected by -exp %q", *exp)
	}
	if err := runner.Run(names); err != nil {
		log.Fatal(err)
	}
}

// printCatalogue renders the registry as the experiment catalogue: one
// line per study with its CLI name, aliases and the "A<n>: ..." title.
func printCatalogue(w io.Writer) {
	fmt.Fprintln(w, "Registered experiments (run order under -exp all):")
	fmt.Fprintln(w)
	for _, e := range harness.Experiments() {
		name := e.Name
		if len(e.Aliases) > 0 {
			name += " (" + strings.Join(e.Aliases, ", ") + ")"
		}
		fmt.Fprintf(w, "  %-22s %s\n", name, e.Title)
	}
}
