package main

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/harness"
	"repro/internal/metrics"
)

// readSweepOutputs loads every file of a sweep directory except the
// provenance sidecars (timings.json always differs; metrics.json only
// exists on instrumented runs and its registry counts are cumulative
// across a test process).
func readSweepOutputs(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := map[string]string{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() == "timings.json" || e.Name() == harness.MetricsFile {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = string(data)
	}
	return out
}

// TestMetricsByteIdentity is the sweep-level half of the telemetry
// contract (the scenario package checks every family's traces): running
// registered experiments with the metrics registry on must reproduce an
// uninstrumented run byte for byte — every report, every series, and
// the manifest with its content hashes. metrics.json itself must appear
// only on the instrumented run.
func TestMetricsByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation rounds in -short mode")
	}
	defer metrics.SetEnabled(false)

	run := func(metricsOn bool) (map[string]string, string) {
		dir := t.TempDir()
		runner, err := harness.NewRunner(harness.Options{
			Rounds: 2, Seed: 7, OutDir: dir, Metrics: metricsOn,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := runner.Run([]string{"table1", "highway"}); err != nil {
			t.Fatal(err)
		}
		manifest, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
		if err != nil {
			t.Fatal(err)
		}
		return readSweepOutputs(t, dir), string(manifest)
	}

	// The uninstrumented run goes first: the instrumented one flips the
	// process-global registry on.
	metrics.SetEnabled(false)
	off, offManifest := run(false)
	if _, ok := off[harness.MetricsFile]; ok {
		t.Fatalf("uninstrumented run wrote %s", harness.MetricsFile)
	}
	on, onManifest := run(true)
	if !metrics.Enabled() {
		t.Fatal("Options.Metrics did not enable the registry")
	}

	if offManifest != onManifest {
		t.Error("manifest.json differs between metrics off and on")
	}
	if len(off) == 0 {
		t.Fatal("no outputs")
	}
	for name, want := range off {
		if got, ok := on[name]; !ok {
			t.Errorf("%s missing from instrumented run", name)
		} else if got != want {
			t.Errorf("%s differs between metrics off and on", name)
		}
	}
	for name := range on {
		if _, ok := off[name]; !ok {
			t.Errorf("instrumented run grew extra output %s", name)
		}
	}
}

// TestMetricsFileIsDeterministicSnapshot checks the persisted
// metrics.json: it parses back as a registry snapshot, carries the core
// simulator counters with nonzero values, and holds no histograms —
// wall times are timings.json's job; the snapshot keeps only counts.
func TestMetricsFileIsDeterministicSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation rounds in -short mode")
	}
	defer metrics.SetEnabled(false)

	dir := t.TempDir()
	runner, err := harness.NewRunner(harness.Options{
		Rounds: 1, Seed: 9, OutDir: dir, Metrics: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := runner.Run([]string{"highway"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, harness.MetricsFile))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := metrics.ReadSnapshotJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Histograms) != 0 {
		t.Fatalf("metrics.json carries %d histograms; wall times belong in timings.json", len(snap.Histograms))
	}
	values := map[string]uint64{}
	for _, c := range snap.Counters {
		values[c.Name] += c.Value
	}
	for _, name := range []string{
		"sim_events_processed_total",
		"sim_events_scheduled_total",
		"mac_transmissions_total",
		"mac_deliveries_total",
		"harness_units_computed_total",
	} {
		if values[name] == 0 {
			t.Errorf("%s missing or zero in metrics.json", name)
		}
	}
	var prom bytes.Buffer
	if err := snap.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(prom.Bytes(), []byte("# TYPE sim_events_processed_total counter")) {
		t.Error("snapshot does not render to Prometheus exposition")
	}
}

// TestSnapshotDuringSweepRace hammers Snapshot(), Prometheus rendering
// and the runner's Progress() from several goroutines while a real
// instrumented sweep runs on a multi-worker pool. Its assertions are
// thin on purpose: the value is running under -race, where any unsynced
// access between the sim workers' counter flushes and a concurrent
// scrape fails the build.
func TestSnapshotDuringSweepRace(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation rounds in -short mode")
	}
	defer metrics.SetEnabled(false)

	dir := t.TempDir()
	runner, err := harness.NewRunner(harness.Options{
		Rounds: 2, Seed: 11, OutDir: dir, Workers: 2, Metrics: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				snap := metrics.Default().Snapshot()
				var buf bytes.Buffer
				if err := snap.WritePrometheus(&buf); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
				_ = runner.Progress()
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}

	if err := runner.Run([]string{"highway"}); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	if p := runner.Progress(); p.UnitsDone == 0 || p.UnitsDone != p.UnitsTotal {
		t.Fatalf("progress after run = %+v", p)
	}
}
