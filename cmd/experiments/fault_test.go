package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultpoint"
	"repro/internal/harness"
)

// TestFaultedStoreByteIdentity is the recovery-path identity contract:
// armed store faults (a torn write, an injected load failure) must
// never change what a sweep produces — only which path produced it.
// The faulted run degrades to recomputation where the store fails and
// still emits every output byte-identically to a clean run.
func TestFaultedStoreByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation rounds in -short mode")
	}
	t.Cleanup(faultpoint.DisarmAll)

	run := func(faults string) (map[string]string, string) {
		dir := t.TempDir()
		runner, err := harness.NewRunner(harness.Options{
			Rounds: 2, Seed: 7, OutDir: dir,
			ResultStore: t.TempDir(),
			FaultPoints: faults,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := runner.Run([]string{"highway"}); err != nil {
			t.Fatal(err)
		}
		manifest, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
		if err != nil {
			t.Fatal(err)
		}
		return readSweepOutputs(t, dir), string(manifest)
	}

	clean, cleanManifest := run("")

	// The faulted run: the first store load errors out (recompute), the
	// second save tears (entry unpublished, temp abandoned). Both are
	// recovery paths; neither may touch simulation bytes.
	faulted, faultedManifest := run(
		"harness.store.load=error:injected load failure@hit=1," +
			"harness.store.save.write=short:20@hit=2")
	if faultedManifest != cleanManifest {
		t.Error("manifest.json differs between clean and store-faulted runs")
	}
	if len(clean) == 0 {
		t.Fatal("no outputs")
	}
	for name, want := range clean {
		if got, ok := faulted[name]; !ok {
			t.Errorf("%s missing from faulted run", name)
		} else if got != want {
			t.Errorf("%s differs between clean and faulted runs", name)
		}
	}
}
