package main

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/baseline"
	"repro/internal/carq"
	"repro/internal/harness"
	"repro/internal/mac"
	"repro/internal/packet"
	"repro/internal/plot"
	"repro/internal/radio"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
)

// The experiment catalogue. Registration order is the `-exp all` order.
func init() {
	harness.Register(harness.Experiment{
		Name: "table1", Aliases: []string{"figures"},
		Title: "Canonical urban testbed: Table 1 and Figures 2-8 from one set of traces",
		Run:   table1AndFigures,
	})
	harness.Register(harness.Experiment{
		Name:  "batch",
		Title: "A1: batched REQUEST optimisation vs per-packet REQUEST",
		Run:   batchAblation,
	})
	harness.Register(harness.Experiment{
		Name:  "selection",
		Title: "A2: cooperator selection policies",
		Run:   selectionAblation,
	})
	harness.Register(harness.Experiment{
		Name:  "apretx",
		Title: "A3: AP-side retransmissions vs pure C-ARQ",
		Run:   apRetxAblation,
	})
	harness.Register(harness.Experiment{
		Name:  "platoon",
		Title: "A4: platoon size sweep - cooperative diversity vs residual loss",
		Run:   platoonSweep,
	})
	harness.Register(harness.Experiment{
		Name:  "download",
		Title: "A5: AP visits to download a file, with and without cooperation",
		Run:   download,
	})
	harness.Register(harness.Experiment{
		Name:  "bitrate",
		Title: "A6: AP bit-rate sweep - does C-ARQ keep delivery ahead?",
		Run:   bitrateSweep,
	})
	harness.Register(harness.Experiment{
		Name:  "epidemic",
		Title: "A7: C-ARQ vs push-based epidemic flooding",
		Run:   epidemicComparison,
	})
	harness.Register(harness.Experiment{
		Name:  "highway",
		Title: "A8: highway drive-thru - packet budget and losses vs speed",
		Run:   highwaySweep,
	})
	harness.Register(harness.Experiment{
		Name:  "combining",
		Title: "A9: frame combining (C-ARQ/FC) with AP repeats",
		Run:   frameCombining,
	})
	harness.Register(harness.Experiment{
		Name:  "adaptive",
		Title: "A10: cooperator-adaptive AP retransmissions across platoon sizes",
		Run:   adaptiveRepeats,
	})
	harness.Register(harness.Experiment{
		Name:  "corridor",
		Title: "A11: multi-Infostation corridor coverage efficiency",
		Run:   corridor,
	})
	harness.Register(harness.Experiment{
		Name:  "ttl",
		Title: "A12: cooperator recruitment TTL vs the tail car's optimality gap",
		Run:   recruitmentTTL,
	})
	harness.Register(harness.Experiment{
		Name:  "dynamics",
		Title: "A13: recovery dynamics - missing packets vs time in the C-ARQ phase",
		Run:   recoveryDynamics,
	})
	harness.Register(harness.Experiment{
		Name:  "twoway",
		Title: "A14: two-way highway - opposing-traffic relay cars serve the platoon",
		Run:   twoWay,
	})
	harness.Register(harness.Experiment{
		Name:  "trafficgrid",
		Title: "A15: signalized urban grid - platoon compresses at red lights among IDM traffic",
		Run:   trafficGrid,
	})
	harness.Register(harness.Experiment{
		Name:  "stopgo",
		Title: "A16: congested highway - a stop-and-go wave crosses the platoon mid-drive-thru",
		Run:   stopGo,
	})
	harness.Register(harness.Experiment{
		Name:  "cityscale",
		Title: "A17: city-scale C-ARQ - hundreds of beaconing vehicles, corner Infostations, density sweep",
		Run:   cityScale,
	})
	harness.Register(harness.Experiment{
		Name:  "citydemand",
		Title: "A18: demand-driven city - OD rush corridors, actuated signals, demand-scale sweep",
		Run:   cityDemand,
	})
}

// table1AndFigures runs the canonical urban testbed once and regenerates
// Table 1 and Figures 3-8 from the same traces, exactly as the paper
// post-processed one set of captures.
func table1AndFigures(c *harness.Context) error {
	cfg := scenario.DefaultTestbed()
	cfg.Rounds = c.Rounds()
	cfg.Seed = c.Seed()
	res, err := c.Testbed("canonical", cfg)
	if err != nil {
		return err
	}

	if err := c.Emit("table1.txt", harness.OutputRaw, report.Table1(res)); err != nil {
		return err
	}
	// The reproduction's Figure 2: the testbed map.
	if err := c.Emit("fig2_map.svg", harness.OutputPlot, report.TestbedMapSVG()); err != nil {
		return err
	}

	for i, flow := range res.CarIDs {
		fig, err := report.NewReceptionFigure(res.Rounds, res.CarIDs, flow)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("fig%d", 3+i)
		if err := c.Emit(name+".txt", harness.OutputRaw, fig.String()); err != nil {
			return err
		}
		if err := c.Emit(name+".dat", harness.OutputTable, fig.GnuplotData()); err != nil {
			return err
		}
		if err := c.Emit(name+".svg", harness.OutputPlot, fig.SVG()); err != nil {
			return err
		}
	}
	for i, car := range res.CarIDs {
		fig, err := report.NewCoopFigure(res.Rounds, res.CarIDs, car)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("fig%d", 6+i)
		if err := c.Emit(name+".txt", harness.OutputRaw, fig.String()); err != nil {
			return err
		}
		if err := c.Emit(name+".dat", harness.OutputTable, fig.GnuplotData()); err != nil {
			return err
		}
		if err := c.Emit(name+".svg", harness.OutputPlot, fig.SVG()); err != nil {
			return err
		}
	}
	return nil
}

// batchAblation compares per-packet REQUESTs with the paper's proposed
// batched-REQUEST optimisation: overhead and recovery latency.
func batchAblation(c *harness.Context) error {
	b := c.Batch()
	arms := []bool{false, true}
	results := make([]*scenario.TestbedResult, len(arms))
	for i, batch := range arms {
		cfg := scenario.DefaultTestbed()
		cfg.Rounds = c.CappedRounds(10)
		cfg.Seed = c.Seed()
		cfg.BatchRequests = batch
		point := "per-packet"
		if batch {
			point = "batched"
		}
		results[i] = b.Testbed(point, cfg)
	}
	if err := b.Go(); err != nil {
		return err
	}

	var out strings.Builder
	out.WriteString("A1: batched REQUEST (all missing seqs in one frame) vs per-packet REQUEST\n\n")
	for i, batch := range arms {
		res := results[i]
		name := "per-packet"
		if batch {
			name = "batched"
		}
		out.WriteString(report.FormatOverhead(name, report.OverheadSummary(res.Rounds)))
		rows := report.Table1Rows(res)
		var lat []float64
		for _, car := range res.CarIDs {
			lat = append(lat, analysis.LastRecoveryLatencies(res.Rounds, car)...)
		}
		fmt.Fprintf(&out, "%-24s post-coop loss: car1=%.1f%% car2=%.1f%% car3=%.1f%%  mean recovery latency=%.2fs (n=%d)\n\n",
			"", rows[0].LostAfterPct(), rows[1].LostAfterPct(), rows[2].LostAfterPct(),
			stats.Mean(lat), len(lat))
	}
	return c.Emit("ablation_batch.txt", harness.OutputRaw, out.String())
}

// selectionAblation compares cooperator-selection policies (the paper's
// future-work question).
func selectionAblation(c *harness.Context) error {
	arms := []struct {
		name string
		sel  carq.Selection
	}{
		{"all one-hop (paper)", carq.SelectAll{}},
		{"best-1 by signal", carq.SelectBestK{K: 1}},
		{"best-2 by signal", carq.SelectBestK{K: 2}},
		{"freshest-1", carq.SelectFreshestK{K: 1}},
	}
	b := c.Batch()
	results := make([]*scenario.TestbedResult, len(arms))
	for i, tc := range arms {
		cfg := scenario.DefaultTestbed()
		cfg.Rounds = c.CappedRounds(10)
		cfg.Seed = c.Seed()
		cfg.Selection = tc.sel
		results[i] = b.Testbed(tc.name, cfg)
	}
	if err := b.Go(); err != nil {
		return err
	}

	var out strings.Builder
	out.WriteString("A2: cooperator selection policy\n\n")
	for i, tc := range arms {
		rows := report.Table1Rows(results[i])
		var post, impr float64
		for _, row := range rows {
			post += row.LostAfterPct()
			impr += row.Improvement()
		}
		o := report.OverheadSummary(results[i].Rounds)
		fmt.Fprintf(&out, "%-22s mean post-coop loss=%.1f%% mean improvement=%.2f responses=%d\n",
			tc.name, post/float64(len(rows)), impr/float64(len(rows)), o.ResponseTx)
	}
	return c.Emit("ablation_selection.txt", harness.OutputRaw, out.String())
}

// apRetxAblation compares pure C-ARQ with spending coverage time on
// AP-side retransmissions.
func apRetxAblation(c *harness.Context) error {
	arms := []struct {
		name    string
		repeats int
		coop    bool
	}{
		{"no-coop, 1x", 1, false},
		{"no-coop, 2x repeats", 2, false},
		{"no-coop, 3x repeats", 3, false},
		{"C-ARQ,  1x (paper)", 1, true},
	}
	b := c.Batch()
	results := make([]*scenario.TestbedResult, len(arms))
	for i, tc := range arms {
		cfg := scenario.DefaultTestbed()
		cfg.Rounds = c.CappedRounds(10)
		cfg.Seed = c.Seed()
		cfg.APRepeats = tc.repeats
		cfg.Coop = tc.coop
		results[i] = b.Testbed(tc.name, cfg)
	}
	if err := b.Go(); err != nil {
		return err
	}

	var out strings.Builder
	out.WriteString("A3: AP-side retransmissions vs pure C-ARQ\n")
	out.WriteString("(repeats>1 divides the AP's new-data budget; distinct packets delivered per pass matter)\n\n")
	for i, tc := range arms {
		res := results[i]
		// Distinct packets held at the end per car per round, and the
		// AP airtime spent. With repeats the AP sends the same seq
		// several times, so "held" must be compared against distinct
		// seqs offered.
		var held, offered float64
		for _, round := range res.Rounds {
			for _, car := range res.CarIDs {
				held += float64(len(round.HeldSet(car)))
				offered += float64(len(round.DataSentSeqs(car)))
			}
		}
		n := float64(len(res.Rounds) * len(res.CarIDs))
		fmt.Fprintf(&out, "%-22s distinct held/car/round=%.1f of %.1f offered (%.1f%%)\n",
			tc.name, held/n, offered/n, 100*held/offered)
	}
	return c.Emit("ablation_apretx.txt", harness.OutputRaw, out.String())
}

// platoonSweep measures residual loss versus platoon size (diversity).
func platoonSweep(c *harness.Context) error {
	const maxCars = 6
	b := c.Batch()
	results := make([]*scenario.TestbedResult, maxCars)
	for cars := 1; cars <= maxCars; cars++ {
		cfg := scenario.DefaultTestbed()
		cfg.Rounds = c.CappedRounds(8)
		cfg.Seed = c.Seed()
		cfg.Cars = cars
		results[cars-1] = b.Testbed(fmt.Sprintf("%d-cars", cars), cfg)
	}
	if err := b.Go(); err != nil {
		return err
	}

	var out strings.Builder
	out.WriteString("A4: platoon size sweep — cooperative diversity vs residual loss\n\n")
	out.WriteString("cars  pre-coop%%  post-coop%%  improvement\n")
	var dat strings.Builder
	dat.WriteString("# cars pre post\n")
	for cars := 1; cars <= maxCars; cars++ {
		rows := report.Table1Rows(results[cars-1])
		var pre, post float64
		for _, row := range rows {
			pre += row.LostBeforePct()
			post += row.LostAfterPct()
		}
		pre /= float64(len(rows))
		post /= float64(len(rows))
		impr := 0.0
		if pre > 0 {
			impr = 1 - post/pre
		}
		fmt.Fprintf(&out, "%4d  %9.1f  %10.1f  %11.2f\n", cars, pre, post, impr)
		fmt.Fprintf(&dat, "%d %g %g\n", cars, pre, post)
	}
	if err := c.Emit("ext_platoon.dat", harness.OutputTable, dat.String()); err != nil {
		return err
	}
	return c.Emit("ext_platoon.txt", harness.OutputRaw, out.String())
}

// download measures AP visits needed to assemble a file, with and without
// cooperation (the paper's headline future-work metric).
func download(c *harness.Context) error {
	arms := []bool{false, true}
	b := c.Batch()
	results := make([]**scenario.DownloadResult, len(arms))
	for i, coop := range arms {
		cfg := scenario.DefaultDownload()
		cfg.Seed = c.Seed()
		cfg.Coop = coop
		point := "no-coop"
		if coop {
			point = "C-ARQ"
		}
		results[i] = b.Download(point, cfg)
	}
	if err := b.Go(); err != nil {
		return err
	}

	var out strings.Builder
	out.WriteString("A5: AP visits to download a file (220 blocks/car)\n\n")
	for i, coop := range arms {
		res := *results[i]
		mode := "no-coop"
		if coop {
			mode = "C-ARQ"
		}
		for _, car := range res.Cars {
			fmt.Fprintf(&out, "%-8s car %v: completed=%v visits=%d time=%v blocks=%d/%d\n",
				mode, car.Car, car.Completed, car.Visits, car.CompletionTime.Round(time.Second), car.Blocks, res.Config.FileBlocks)
		}
		out.WriteString("\n")
	}
	return c.Emit("ext_download.txt", harness.OutputRaw, out.String())
}

// bitrateSweep asks the paper's "can C-ARQ let the AP use a higher bit
// rate?" question.
func bitrateSweep(c *harness.Context) error {
	mods := radio.Modulations()
	b := c.Batch()
	results := make([]*scenario.TestbedResult, len(mods))
	for i, mod := range mods {
		cfg := scenario.DefaultTestbed()
		cfg.Rounds = c.CappedRounds(8)
		cfg.Seed = c.Seed()
		cfg.Modulation = mod
		// Higher PHY rates free airtime; keep the packet rate fixed so
		// the comparison isolates the PER effect.
		results[i] = b.Testbed(mod.Name, cfg)
	}
	if err := b.Go(); err != nil {
		return err
	}

	var out strings.Builder
	out.WriteString("A6: AP bit-rate sweep — losses grow with rate; does C-ARQ keep delivery ahead?\n\n")
	out.WriteString("rate              pre-coop%%  post-coop%%  delivered/car/round\n")
	for i, mod := range mods {
		rows := report.Table1Rows(results[i])
		var pre, post, delivered float64
		for _, row := range rows {
			pre += row.LostBeforePct()
			post += row.LostAfterPct()
			delivered += row.TxByAP.Mean() * (1 - row.LostAfterPct()/100)
		}
		n := float64(len(rows))
		fmt.Fprintf(&out, "%-17s %9.1f  %10.1f  %19.1f\n", mod.Name, pre/n, post/n, delivered/n)
	}
	return c.Emit("ext_bitrate.txt", harness.OutputRaw, out.String())
}

// epidemicComparison pits C-ARQ against push-based epidemic flooding.
func epidemicComparison(c *harness.Context) error {
	epidemicFactory := func(id packet.NodeID, engine *sim.Engine, port *mac.Station, seed int64, obs carq.Observer) (scenario.Node, error) {
		return baseline.NewEpidemicNode(
			baseline.DefaultEpidemicConfig(id), engine, port,
			sim.Stream(seed, fmt.Sprintf("epidemic-%v", id)), obs)
	}
	arms := []struct {
		name    string
		factory scenario.NodeFactory
	}{
		{"C-ARQ", nil},
		{"epidemic", epidemicFactory},
	}
	b := c.Batch()
	results := make([]*scenario.TestbedResult, len(arms))
	for i, tc := range arms {
		cfg := scenario.DefaultTestbed()
		cfg.Rounds = c.CappedRounds(8)
		cfg.Seed = c.Seed()
		cfg.Coop = true
		cfg.Factory = tc.factory
		results[i] = b.Testbed(tc.name, cfg)
	}
	if err := b.Go(); err != nil {
		return err
	}

	var out strings.Builder
	out.WriteString("A7: C-ARQ vs epidemic flooding in the dark area\n\n")
	for i, tc := range arms {
		rows := report.Table1Rows(results[i])
		var post float64
		for _, row := range rows {
			post += row.LostAfterPct()
		}
		o := report.OverheadSummary(results[i].Rounds)
		fmt.Fprintf(&out, "%-10s mean residual loss=%.1f%%  recovery transmissions=%d (%d B)\n",
			tc.name, post/float64(len(rows)), o.ResponseTx+o.RequestTx, o.ResponseBytes+o.RequestBytes)
	}
	return c.Emit("ext_epidemic.txt", harness.OutputRaw, out.String())
}

// highwaySweep reproduces the drive-thru loss-versus-speed relationship.
func highwaySweep(c *harness.Context) error {
	speeds := []float64{30, 60, 90, 120}
	b := c.Batch()
	results := make([]*scenario.HighwayResult, len(speeds))
	for i, kmh := range speeds {
		cfg := scenario.DefaultHighway()
		cfg.Rounds = c.CappedRounds(6)
		cfg.Seed = c.Seed()
		cfg.SpeedMPS = kmh / 3.6
		results[i] = b.Highway(fmt.Sprintf("%.0f-kmh", kmh), cfg)
	}
	if err := b.Go(); err != nil {
		return err
	}

	var out strings.Builder
	out.WriteString("A8: highway drive-thru — per-pass packet budget and losses vs speed\n\n")
	out.WriteString("speed(km/h)  window(pkts)  pre-coop%%  post-coop%%\n")
	var dat strings.Builder
	dat.WriteString("# kmh window pre post\n")
	for i, kmh := range speeds {
		res := results[i]
		rows := report.RowsFor(res.Rounds, res.CarIDs)
		var tx, pre, post float64
		for _, row := range rows {
			tx += row.TxByAP.Mean()
			pre += row.LostBeforePct()
			post += row.LostAfterPct()
		}
		n := float64(len(rows))
		fmt.Fprintf(&out, "%11.0f  %12.0f  %9.1f  %10.1f\n", kmh, tx/n, pre/n, post/n)
		fmt.Fprintf(&dat, "%g %g %g %g\n", kmh, tx/n, pre/n, post/n)
	}
	if err := c.Emit("ext_highway.dat", harness.OutputTable, dat.String()); err != nil {
		return err
	}
	return c.Emit("ext_highway.txt", harness.OutputRaw, out.String())
}

// frameCombining evaluates the C-ARQ/FC extension (reference [12]): soft
// combining of corrupted copies, in its natural regime of AP repeats.
func frameCombining(c *harness.Context) error {
	arms := []struct {
		name    string
		repeats int
		fc      bool
	}{
		{"C-ARQ, 1x, no FC", 1, false},
		{"C-ARQ, 2x, no FC", 2, false},
		{"C-ARQ, 2x, FC", 2, true},
	}
	b := c.Batch()
	results := make([]*scenario.TestbedResult, len(arms))
	for i, tc := range arms {
		cfg := scenario.DefaultTestbed()
		cfg.Rounds = c.CappedRounds(10)
		cfg.Seed = c.Seed()
		cfg.APRepeats = tc.repeats
		cfg.FrameCombining = tc.fc
		results[i] = b.Testbed(tc.name, cfg)
	}
	if err := b.Go(); err != nil {
		return err
	}

	var out strings.Builder
	out.WriteString("A9: frame combining (C-ARQ/FC, reference [12])\n")
	out.WriteString("Soft copies only exist when packets air more than once, so FC is paired with AP repeats.\n\n")
	for i, tc := range arms {
		rows := report.Table1Rows(results[i])
		var pre, post float64
		for _, row := range rows {
			pre += row.LostBeforePct()
			post += row.LostAfterPct()
		}
		n := float64(len(rows))
		fmt.Fprintf(&out, "%-20s mean pre-coop=%.1f%%  mean post-coop=%.1f%%\n", tc.name, pre/n, post/n)
	}
	return c.Emit("ext_combining.txt", harness.OutputRaw, out.String())
}

// adaptiveRepeats evaluates the cooperator-adaptive AP retransmission
// scheme the paper's §3.2 leaves as future work, across platoon sizes.
func adaptiveRepeats(c *harness.Context) error {
	type arm struct {
		cars     int
		name     string
		adaptive int
		static   int
	}
	var arms []arm
	for _, cars := range []int{1, 3} {
		arms = append(arms,
			arm{cars, "static 1x", 0, 1},
			arm{cars, "adaptive<=3", 3, 1},
		)
	}
	b := c.Batch()
	results := make([]*scenario.TestbedResult, len(arms))
	for i, tc := range arms {
		cfg := scenario.DefaultTestbed()
		cfg.Rounds = c.CappedRounds(8)
		cfg.Seed = c.Seed()
		cfg.Cars = tc.cars
		cfg.APRepeats = tc.static
		cfg.AdaptiveAPRepeats = tc.adaptive
		results[i] = b.Testbed(fmt.Sprintf("%d-cars %s", tc.cars, tc.name), cfg)
	}
	if err := b.Go(); err != nil {
		return err
	}

	var out strings.Builder
	out.WriteString("A10: cooperator-adaptive AP retransmissions (paper §3.2 future work)\n")
	out.WriteString("The AP overhears HELLOs and repeats more for poorly-connected cars.\n\n")
	out.WriteString("cars  policy        post-coop%%\n")
	for i, tc := range arms {
		rows := report.Table1Rows(results[i])
		var post float64
		for _, row := range rows {
			post += row.LostAfterPct()
		}
		fmt.Fprintf(&out, "%4d  %-12s %10.1f\n", tc.cars, tc.name, post/float64(len(rows)))
	}
	return c.Emit("ext_adaptive.txt", harness.OutputRaw, out.String())
}

// corridor evaluates the Figure-1 multi-Infostation deployment: coverage
// efficiency (held fraction of the receivable stream) with and without
// cooperation.
func corridor(c *harness.Context) error {
	arms := []bool{false, true}
	b := c.Batch()
	results := make([]*scenario.CorridorResult, len(arms))
	for i, coop := range arms {
		cfg := scenario.DefaultCorridor()
		cfg.Rounds = c.CappedRounds(8)
		cfg.Seed = c.Seed()
		cfg.Coop = coop
		point := "no-coop"
		if coop {
			point = "C-ARQ"
		}
		results[i] = b.Corridor(point, cfg)
	}
	if err := b.Go(); err != nil {
		return err
	}

	var out strings.Builder
	out.WriteString("A11: multi-Infostation corridor (the paper's Figure 1 deployment)\n\n")
	for i, coop := range arms {
		res := results[i]
		mode := "no-coop"
		if coop {
			mode = "C-ARQ"
		}
		for _, car := range res.CarIDs {
			eff := analysis.CoverageEfficiency(res.Rounds, car, res.CarIDs)
			fmt.Fprintf(&out, "%-8s car %v: coverage efficiency %.3f\n", mode, car, eff)
		}
		out.WriteString("\n")
	}
	return c.Emit("ext_corridor.txt", harness.OutputRaw, out.String())
}

// recruitmentTTL sweeps the cooperator staleness timeout. The default
// 3-beacon TTL lets shadowing fades on the platoon's weakest link (car 1
// <-> car 3) evict recruitments mid-coverage, so stretches of overheard
// packets are never buffered — the mechanism behind the tail car's
// optimality gap in Figure 8. Longer TTLs nearly close it.
func recruitmentTTL(c *harness.Context) error {
	ttls := []time.Duration{3 * time.Second, 5 * time.Second, 8 * time.Second, 20 * time.Second}
	b := c.Batch()
	results := make([]*scenario.TestbedResult, len(ttls))
	for i, ttl := range ttls {
		ttl := ttl
		cfg := scenario.DefaultTestbed()
		cfg.Rounds = c.CappedRounds(10)
		cfg.Seed = c.Seed()
		cfg.TuneCarq = func(cc *carq.Config) { cc.CandidateTTL = ttl }
		results[i] = b.Testbed(ttl.String(), cfg)
	}
	if err := b.Go(); err != nil {
		return err
	}

	var out strings.Builder
	out.WriteString("A12: cooperator recruitment TTL vs the tail car's optimality gap\n\n")
	out.WriteString("TTL    car3 mean gap   car3 post-coop%%\n")
	for i, ttl := range ttls {
		res := results[i]
		lo, hi, ok := analysis.Window(res.Rounds, 3, res.CarIDs)
		if !ok {
			return fmt.Errorf("no window for car 3")
		}
		after := analysis.AfterCoopSeries(res.Rounds, 3, lo, hi)
		joint := analysis.JointSeries(res.Rounds, 3, res.CarIDs, lo, hi)
		_, meanGap := analysis.OptimalityGap(after, joint)
		rows := report.Table1Rows(res)
		fmt.Fprintf(&out, "%-6v %13.4f %17.1f\n", ttl, meanGap, rows[2].LostAfterPct())
	}
	return c.Emit("ablation_ttl.txt", harness.OutputRaw, out.String())
}

// recoveryDynamics renders how each car's missing list drains during the
// Cooperative-ARQ phase — per-packet REQUEST cycling versus the batched
// optimisation, on the same round.
func recoveryDynamics(c *harness.Context) error {
	arms := []bool{false, true}
	b := c.Batch()
	results := make([]*scenario.TestbedResult, len(arms))
	for i, batch := range arms {
		cfg := scenario.DefaultTestbed()
		cfg.Rounds = 1
		cfg.Seed = c.Seed()
		cfg.BatchRequests = batch
		point := "per-packet"
		if batch {
			point = "batched"
		}
		results[i] = b.Testbed(point, cfg)
	}
	if err := b.Go(); err != nil {
		return err
	}

	var series []*stats.Series
	var out strings.Builder
	out.WriteString("A13: recovery dynamics — missing packets vs time in the Cooperative-ARQ phase\n\n")
	for i, batch := range arms {
		res := results[i]
		name := "per-packet"
		if batch {
			name = "batched"
		}
		for _, car := range res.CarIDs {
			s := analysis.RecoveryDynamics(res.Rounds[0], car)
			if s.Len() == 0 {
				continue
			}
			s.Name = fmt.Sprintf("car %v (%s)", car, name)
			series = append(series, s)
			half := analysis.HalfRecoveryTime(res.Rounds[0], car)
			fmt.Fprintf(&out, "%-22s initial missing=%3.0f  final=%3.0f  half-recovery=%.1fs\n",
				s.Name, s.Y[0], s.Y[s.Len()-1], half)
		}
	}
	chart := plot.Chart{
		Title:  "Missing packets during the Cooperative-ARQ phase",
		XLabel: "Seconds since phase entry",
		YLabel: "Missing packets",
		Series: series,
	}
	// Derive the Y range from the data (counts, not probabilities).
	chart.FitY(0.05)
	if err := c.Emit("ext_dynamics.svg", harness.OutputPlot, chart.SVG()); err != nil {
		return err
	}
	var dat strings.Builder
	for _, s := range series {
		dat.WriteString(s.GnuplotData())
		dat.WriteString("\n\n")
	}
	if err := c.Emit("ext_dynamics.dat", harness.OutputTable, dat.String()); err != nil {
		return err
	}
	return c.Emit("ext_dynamics.txt", harness.OutputRaw, out.String())
}

// trafficGrid evaluates the microscopic urban-grid scenario (A15): a
// C-ARQ platoon loops a signalized block among closed-loop IDM traffic.
// Red lights compress it bumper-to-bumper (the generalised corner-C
// effect) and the far side of the block is dark. Both arms replay the
// same cached per-round traffic streams, so the sweep pays the
// closed-loop vehicle dynamics once.
func trafficGrid(c *harness.Context) error {
	arms := []bool{false, true}
	b := c.Batch()
	results := make([]*scenario.TrafficGridResult, len(arms))
	for i, coop := range arms {
		cfg := scenario.DefaultTrafficGrid()
		cfg.Rounds = c.CappedRounds(6)
		cfg.Seed = c.Seed()
		cfg.Coop = coop
		point := "no-coop"
		if coop {
			point = "C-ARQ"
		}
		results[i] = b.TrafficGrid(point, cfg)
	}
	if err := b.Go(); err != nil {
		return err
	}

	var out strings.Builder
	out.WriteString("A15: signalized urban grid — IDM traffic, fixed-cycle lights, platoon looping the AP block\n")
	out.WriteString("Background vehicles are radio-silent but congest the platoon's streets;\n")
	out.WriteString("red lights compress the platoon (generalised corner-C) before it re-enters coverage.\n\n")
	var dat strings.Builder
	dat.WriteString("# coop meanspeed crawlshare pre post\n")
	for i, coop := range arms {
		res := results[i]
		mode := "no-coop"
		if coop {
			mode = "C-ARQ"
		}
		var speed, crawl float64
		for _, stream := range res.Traffic {
			s := scenario.SummarizeTraffic(stream)
			speed += s.MeanSpeedMPS
			crawl += s.CrawlShare
		}
		nr := float64(len(res.Traffic))
		rows := report.RowsFor(res.Rounds, res.CarIDs)
		var pre, post float64
		for _, row := range rows {
			pre += row.LostBeforePct()
			post += row.LostAfterPct()
		}
		n := float64(len(rows))
		fmt.Fprintf(&out, "%-8s traffic: mean speed %.1f m/s, crawl share %.1f%%   losses: pre-coop %.1f%%  post-coop %.1f%%\n",
			mode, speed/nr, 100*crawl/nr, pre/n, post/n)
		coopFlag := 0
		if coop {
			coopFlag = 1
		}
		fmt.Fprintf(&dat, "%d %g %g %g %g\n", coopFlag, speed/nr, crawl/nr, pre/n, post/n)
	}
	// Per-car detail for the C-ARQ arm: queue compression diversity
	// shows up as near-equal post-coop losses across the platoon.
	rows := report.RowsFor(results[1].Rounds, results[1].CarIDs)
	out.WriteString("\nC-ARQ per-car losses:\n")
	for i, row := range rows {
		fmt.Fprintf(&out, "  car%d: pre=%.1f%% post=%.1f%%\n", i+1, row.LostBeforePct(), row.LostAfterPct())
	}
	if err := c.Emit("ext_trafficgrid.dat", harness.OutputTable, dat.String()); err != nil {
		return err
	}
	return c.Emit("ext_trafficgrid.txt", harness.OutputRaw, out.String())
}

// stopGo evaluates the congested-highway scenario (A16): an upstream
// braking perturbation launches a stop-and-go wave through a dense ring
// of IDM vehicles while the C-ARQ platoon drives past the AP. The wave
// stretches the platoon's coverage dwell and its dark-phase recovery
// demand at the same time.
func stopGo(c *harness.Context) error {
	arms := []bool{false, true}
	b := c.Batch()
	results := make([]*scenario.StopGoResult, len(arms))
	for i, coop := range arms {
		cfg := scenario.DefaultStopGo()
		cfg.Rounds = c.CappedRounds(6)
		cfg.Seed = c.Seed()
		cfg.Coop = coop
		point := "no-coop"
		if coop {
			point = "C-ARQ"
		}
		results[i] = b.StopGo(point, cfg)
	}
	if err := b.Go(); err != nil {
		return err
	}

	var out strings.Builder
	out.WriteString("A16: congested highway — stop-and-go wave through the platoon during the AP drive-thru\n")
	out.WriteString("A vehicle five slots upstream brakes to 1.5 m/s for 20 s; the jam wave crosses the\n")
	out.WriteString("platoon while it is in or near coverage. Arms share cached traffic streams.\n\n")
	var dat strings.Builder
	dat.WriteString("# coop meanspeed crawlshare pre post recoveries\n")
	for i, coop := range arms {
		res := results[i]
		mode := "no-coop"
		if coop {
			mode = "C-ARQ"
		}
		var speed, crawl float64
		for _, stream := range res.Traffic {
			s := scenario.SummarizeTraffic(stream)
			speed += s.MeanSpeedMPS
			crawl += s.CrawlShare
		}
		nr := float64(len(res.Traffic))
		rows := report.RowsFor(res.Rounds, res.CarIDs)
		var pre, post float64
		for _, row := range rows {
			pre += row.LostBeforePct()
			post += row.LostAfterPct()
		}
		n := float64(len(rows))
		recoveries := 0
		for _, round := range res.Rounds {
			recoveries += len(round.Recovered)
		}
		fmt.Fprintf(&out, "%-8s traffic: mean speed %.1f m/s, crawl share %.1f%%   losses: pre-coop %.1f%%  post-coop %.1f%%  recoveries=%d\n",
			mode, speed/nr, 100*crawl/nr, pre/n, post/n, recoveries)
		coopFlag := 0
		if coop {
			coopFlag = 1
		}
		fmt.Fprintf(&dat, "%d %g %g %g %g %d\n", coopFlag, speed/nr, crawl/nr, pre/n, post/n, recoveries)
	}
	if err := c.Emit("ext_stopgo.dat", harness.OutputTable, dat.String()); err != nil {
		return err
	}
	return c.Emit("ext_stopgo.txt", harness.OutputRaw, out.String())
}

// cityScale evaluates the city-scale scenario (A17): a 10-car C-ARQ
// platoon circuits four corner Infostations across a 3 km signalized
// grid while every background vehicle beacons — hundreds of MAC stations,
// the workload the spatially-indexed radio medium exists for. The sweep
// varies background vehicle density (channel load and station count) and
// adds a no-cooperation baseline at the densest point.
func cityScale(c *harness.Context) error {
	type arm struct {
		name       string
		background int
		coop       bool
	}
	arms := []arm{
		{"sparse-100", 100, true},
		{"medium-200", 200, true},
		{"dense-300", 300, true},
		{"dense-300-nocoop", 300, false},
	}
	b := c.Batch()
	results := make([]*scenario.CityScaleResult, len(arms))
	for i, tc := range arms {
		cfg := scenario.DefaultCityScale()
		cfg.Rounds = c.CappedRounds(2)
		cfg.Seed = c.Seed()
		cfg.Background = tc.background
		cfg.Coop = tc.coop
		results[i] = b.CityScale(tc.name, cfg)
	}
	if err := b.Go(); err != nil {
		return err
	}

	var out strings.Builder
	out.WriteString("A17: city-scale C-ARQ — 3x3 km signalized grid, every vehicle a beaconing station,\n")
	out.WriteString("10-car platoon circuits 4 corner Infostations (synchronised carousel), density sweep.\n")
	out.WriteString("The reception horizon (~300 m) is a small fraction of the city: the spatially-indexed\n")
	out.WriteString("medium delivers each frame to dozens of stations instead of all of them.\n\n")
	out.WriteString("arm               stations  pre-coop%  post-coop%  recoveries  mean-speed(m/s)\n")
	var dat strings.Builder
	dat.WriteString("# background coop stations pre post recoveries\n")
	for i, tc := range arms {
		res := results[i]
		rows := report.RowsFor(res.Rounds, res.CarIDs)
		var pre, post float64
		for _, row := range rows {
			pre += row.LostBeforePct()
			post += row.LostAfterPct()
		}
		n := float64(len(rows))
		recoveries := 0
		for _, round := range res.Rounds {
			recoveries += len(round.Recovered)
		}
		var speed float64
		for _, stream := range res.Traffic {
			speed += scenario.SummarizeTraffic(stream).MeanSpeedMPS
		}
		speed /= float64(len(res.Traffic))
		fmt.Fprintf(&out, "%-17s %8d  %9.1f  %10.1f  %10d  %15.1f\n",
			tc.name, res.Stations(), pre/n, post/n, recoveries, speed)
		coopFlag := 0
		if tc.coop {
			coopFlag = 1
		}
		fmt.Fprintf(&dat, "%d %d %d %g %g %d\n", tc.background, coopFlag, res.Stations(), pre/n, post/n, recoveries)
	}
	if err := c.Emit("ext_cityscale.dat", harness.OutputTable, dat.String()); err != nil {
		return err
	}
	return c.Emit("ext_cityscale.txt", harness.OutputRaw, out.String())
}

// cityDemand evaluates the demand-driven city scenario (A18): the
// background population comes from an origin–destination table — Poisson
// injection on two east-west arterials and two north-south connectors,
// shortest-path routes, exit at the destination — so the density the
// platoon meets follows rush corridors instead of flat noise, and the
// lights run queue-actuated control. The sweep scales the whole demand
// table and contrasts actuated against fixed-cycle signals at the
// nominal load.
func cityDemand(c *harness.Context) error {
	type arm struct {
		name     string
		scale    float64
		actuated bool
	}
	arms := []arm{
		{"demand-0.6", 0.6, true},
		{"demand-1.0", 1.0, true},
		{"demand-1.4", 1.4, true},
		{"demand-1.0-fixed", 1.0, false},
	}
	b := c.Batch()
	results := make([]*scenario.CityDemandResult, len(arms))
	for i, tc := range arms {
		cfg := scenario.DefaultCityDemand()
		cfg.Rounds = c.CappedRounds(2)
		cfg.Seed = c.Seed()
		cfg.DemandScale = tc.scale
		cfg.Actuated = tc.actuated
		results[i] = b.CityDemand(tc.name, cfg)
	}
	if err := b.Go(); err != nil {
		return err
	}

	var out strings.Builder
	out.WriteString("A18: demand-driven city — OD table (two east-west arterials, two north-south\n")
	out.WriteString("connectors, Poisson injection, shortest-path routes, exit at destination) and\n")
	out.WriteString("queue-actuated signals. Densities form rush corridors; the demand-scale sweep\n")
	out.WriteString("moves the city from fluid to saturated, and the fixed-cycle arm isolates the\n")
	out.WriteString("signal controller's effect at nominal load.\n\n")
	out.WriteString("arm               vehicles  mean-speed(m/s)  crawl%  pre-coop%  post-coop%  recoveries\n")
	var dat strings.Builder
	dat.WriteString("# scale actuated vehicles meanspeed crawlshare pre post recoveries\n")
	for i, tc := range arms {
		res := results[i]
		var vehicles float64
		for _, n := range res.Vehicles {
			vehicles += float64(n)
		}
		vehicles /= float64(len(res.Vehicles))
		var speed, crawl float64
		for _, stream := range res.Traffic {
			s := scenario.SummarizeTraffic(stream)
			speed += s.MeanSpeedMPS
			crawl += s.CrawlShare
		}
		nr := float64(len(res.Traffic))
		rows := report.RowsFor(res.Rounds, res.CarIDs)
		var pre, post float64
		for _, row := range rows {
			pre += row.LostBeforePct()
			post += row.LostAfterPct()
		}
		n := float64(len(rows))
		recoveries := 0
		for _, round := range res.Rounds {
			recoveries += len(round.Recovered)
		}
		fmt.Fprintf(&out, "%-17s %8.1f  %15.1f  %6.1f  %9.1f  %10.1f  %10d\n",
			tc.name, vehicles, speed/nr, 100*crawl/nr, pre/n, post/n, recoveries)
		actFlag := 0
		if tc.actuated {
			actFlag = 1
		}
		fmt.Fprintf(&dat, "%g %d %g %g %g %g %g %d\n",
			tc.scale, actFlag, vehicles, speed/nr, crawl/nr, pre/n, post/n, recoveries)
	}
	if err := c.Emit("ext_citydemand.dat", harness.OutputTable, dat.String()); err != nil {
		return err
	}
	return c.Emit("ext_citydemand.txt", harness.OutputRaw, out.String())
}

// twoWay evaluates the two-way highway extension: opposing-traffic relay
// cars that passed the AP after the platoon meet it head-on on the return
// leg and serve its Cooperative-ARQ REQUESTs.
func twoWay(c *harness.Context) error {
	arms := []struct {
		name   string
		coop   bool
		relays int
	}{
		{"no-coop", false, 4},
		{"platoon-only", true, 0},
		{"opposing-4", true, 4},
	}
	b := c.Batch()
	results := make([]*scenario.TwoWayResult, len(arms))
	for i, tc := range arms {
		cfg := scenario.DefaultTwoWay()
		cfg.Rounds = c.CappedRounds(6)
		cfg.Seed = c.Seed()
		cfg.Coop = tc.coop
		cfg.RelayCars = tc.relays
		results[i] = b.TwoWay(tc.name, cfg)
	}
	if err := b.Go(); err != nil {
		return err
	}

	var out strings.Builder
	out.WriteString("A14: two-way highway — opposing-traffic relay cars serve the platoon's C-ARQ phase\n")
	out.WriteString("The AP broadcasts a fixed carousel; relay cars cross coverage after the platoon\n")
	out.WriteString("and stream past it head-on while it recovers in the dark return leg.\n\n")
	out.WriteString("arm            pre-coop%  post-coop%  recoveries  from-relays\n")
	var dat strings.Builder
	dat.WriteString("# relays pre post relayshare\n")
	for i, tc := range arms {
		res := results[i]
		rows := report.RowsFor(res.Rounds, res.CarIDs)
		var pre, post float64
		for _, row := range rows {
			pre += row.LostBeforePct()
			post += row.LostAfterPct()
		}
		n := float64(len(rows))
		relay := make(map[packet.NodeID]bool, len(res.RelayIDs))
		for _, id := range res.RelayIDs {
			relay[id] = true
		}
		var total, fromRelay int
		for _, round := range res.Rounds {
			for _, rec := range round.Recovered {
				total++
				if relay[rec.From] {
					fromRelay++
				}
			}
		}
		fmt.Fprintf(&out, "%-14s %9.1f  %10.1f  %10d  %11d\n",
			tc.name, pre/n, post/n, total, fromRelay)
		if tc.coop {
			share := 0.0
			if total > 0 {
				share = float64(fromRelay) / float64(total)
			}
			fmt.Fprintf(&dat, "%d %g %g %g\n", tc.relays, pre/n, post/n, share)
		}
	}
	if err := c.Emit("ext_twoway.dat", harness.OutputTable, dat.String()); err != nil {
		return err
	}
	return c.Emit("ext_twoway.txt", harness.OutputRaw, out.String())
}
