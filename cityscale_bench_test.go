package repro

import (
	"sync"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/mac"
	"repro/internal/mobility"
	"repro/internal/packet"
	"repro/internal/radio"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// The city-scale medium benchmark: >=300 stations following a replayed
// microscopic-traffic population across a 3x3 km grid, all of them
// beaconing, under a deep-urban channel whose reception horizon (~220 m)
// is a small fraction of the city. This is the workload the spatial index
// exists for; the exhaustive arm runs the same model through the
// full-scan fallback (byte-identical results, see the equivalence tests)
// so the two ns/op are directly comparable.

const (
	cityBenchVehicles = 600
	cityBenchSimFor   = 60 * time.Second
)

var (
	cityBenchOnce   sync.Once
	cityBenchModels []mobility.Model
	cityBenchAPs    []geom.Point
	cityBenchErr    error
)

// cityBenchWorld builds (once) the replayed vehicle tracks behind the
// benchmark, via the cityscale scenario's traffic world.
func cityBenchWorld(tb testing.TB) ([]mobility.Model, []geom.Point) {
	tb.Helper()
	cityBenchOnce.Do(func() {
		cfg := scenario.DefaultCityScale()
		cfg.Cars = 10
		cfg.Background = cityBenchVehicles - cfg.Cars
		cfg.GridRows, cfg.GridCols = 22, 22 // ~4x4 km: the horizon is a small fraction
		cfg.Duration = cityBenchSimFor + time.Second
		cityBenchModels, cityBenchAPs, cityBenchErr = scenario.CityScaleMobilityModels(cfg, 0)
	})
	if cityBenchErr != nil {
		tb.Fatal(cityBenchErr)
	}
	return cityBenchModels, cityBenchAPs
}

// cityBenchChannel: like the cityscale study's channel but one notch
// deeper urban, so even HELLO beacons carry only ~220 m.
func cityBenchChannel(seed int64) radio.Config {
	return radio.Config{
		PathLoss:           radio.LogDistance{FreqHz: 2.4e9, RefDist: 1, Exponent: 4.5},
		TxPowerDBm:         12,
		NoiseFloorDBm:      -92,
		ShadowSigmaDB:      3,
		ShadowTau:          800 * time.Millisecond,
		FadingK:            2,
		CaptureThresholdDB: 10,
		Seed:               seed,
	}
}

// runCityMedium runs one full delivery workload — every vehicle beaconing
// at 1 Hz plus four Infostations streaming 1000 B DATA at 20 frames/s —
// through a raw medium in the given mode, and returns the transmission
// count.
func runCityMedium(tb testing.TB, mcfg mac.MediumConfig, seed int64, fast bool) int {
	tb.Helper()
	models, aps := cityBenchWorld(tb)
	engine := sim.New()
	chCfg := cityBenchChannel(seed)
	chCfg.FastMode = fast
	ch := radio.MustChannel(chCfg)
	m := mac.NewMediumWith(engine, ch, nil, mcfg)
	defer m.Close()

	var stations []*mac.Station
	for i, ap := range aps {
		ap := ap
		st, err := m.AddStation(scenario.APID+packet.NodeID(i),
			func(time.Duration) geom.Point { return ap }, nil, mac.DefaultConfig())
		if err != nil {
			tb.Fatal(err)
		}
		stations = append(stations, st)
	}
	for i, model := range models {
		st, err := m.AddStation(packet.NodeID(1000+i), model.Position, nil, mac.DefaultConfig())
		if err != nil {
			tb.Fatal(err)
		}
		stations = append(stations, st)
	}

	// Self-rescheduling pooled send chains keep the event heap at one
	// pending timer per station instead of the whole run's schedule, and
	// cost no allocations in steady state. The per-station frame is
	// reused across sends: the medium is traced by a nil tracer here and
	// encodes the frame to wire inside Send, so nothing observes the
	// mutation.
	sched := sim.Stream(seed, "city-bench-schedule")
	payload := make([]byte, 1000)
	type beatState struct {
		st     *mac.Station
		frame  *packet.Frame
		at     time.Duration
		period time.Duration
	}
	var beat func(any)
	beat = func(arg any) {
		b := arg.(*beatState)
		b.frame.Seq++
		_ = b.st.Send(b.frame)
		b.at += b.period
		if b.at < cityBenchSimFor {
			engine.ScheduleCall(b.at-engine.Now(), beat, b)
		}
	}
	for i, st := range stations {
		var b *beatState
		if i < len(aps) {
			b = &beatState{
				st:     st,
				frame:  packet.NewData(st.ID(), packet.NodeID(1000), 0, payload),
				at:     time.Duration(i) * time.Millisecond,
				period: 50 * time.Millisecond,
			}
		} else {
			b = &beatState{
				st:     st,
				frame:  packet.NewHello(st.ID(), nil),
				at:     time.Duration(sched.Int63n(int64(time.Second))),
				period: time.Second,
			}
		}
		engine.ScheduleCall(b.at, beat, b)
	}
	if err := engine.RunUntil(cityBenchSimFor); err != nil {
		tb.Fatal(err)
	}
	sent := 0
	for _, st := range stations {
		sent += int(st.Sent())
	}
	return sent
}

// BenchmarkCityScale compares the two delivery paths on the 300-station
// workload; the indexed/exhaustive ns/op ratio is the headline speedup
// recorded in BENCH_<n>.json (acceptance: >= 5x at >= 300 stations).
func BenchmarkCityScale(b *testing.B) {
	cityBenchWorld(b) // exclude the one-time traffic replay from timing
	for _, tc := range []struct {
		name string
		cfg  mac.MediumConfig
		fast bool
	}{
		{"indexed", mac.MediumConfig{}, false},
		{"exhaustive", mac.MediumConfig{Exhaustive: true}, false},
		// No dash before the worker count: benchjson strips one trailing
		// -N (the GOMAXPROCS suffix), which would alias the two arms.
		{"tiled2", mac.MediumConfig{TileWorkers: 2}, false},
		{"tiled4", mac.MediumConfig{TileWorkers: 4}, false},
		// The approximate fast channel mode on the indexed path: same
		// workload, statistically-equivalent results (see the scenario
		// equivalence gate), recorded so the exact/fast ratio is tracked.
		{"fast", mac.MediumConfig{}, true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			sent := 0
			for i := 0; i < b.N; i++ {
				sent = runCityMedium(b, tc.cfg, int64(i+1), tc.fast)
			}
			b.ReportMetric(float64(sent), "tx")
			b.ReportMetric(float64(cityBenchVehicles+4), "stations")
		})
	}
}

// TestCityScaleIndexedSpeedup guards the acceptance bar with a cushion:
// the indexed path must beat the exhaustive scan by a healthy factor on
// the 300-station workload. The benchmark records the full ratio; the
// test asserts a conservative floor so scheduler noise cannot flake it.
func TestCityScaleIndexedSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("city-scale workload in -short mode")
	}
	if raceEnabled {
		t.Skip("wall-clock ratio is meaningless under race instrumentation")
	}
	runCityMedium(t, mac.MediumConfig{}, 1, false) // warm caches both ways
	start := time.Now()
	runCityMedium(t, mac.MediumConfig{}, 2, false)
	indexed := time.Since(start)
	start = time.Now()
	runCityMedium(t, mac.MediumConfig{Exhaustive: true}, 2, false)
	exhaustive := time.Since(start)
	ratio := float64(exhaustive) / float64(indexed)
	t.Logf("indexed=%v exhaustive=%v speedup=%.1fx at %d stations", indexed, exhaustive, ratio, cityBenchVehicles+4)
	// `go test ./...` times this while other packages share the CPU, so
	// only an outright inversion fails; BENCH_<n>.json plus the
	// bench-compare gate record and guard the real ~6x.
	if ratio < 1 {
		t.Fatalf("indexed delivery SLOWER than exhaustive (%.2fx); expected ~6x under benchmark conditions", ratio)
	}
}

// TestCityScaleFastSpeedup: the fast channel mode must not lose to exact
// mode on the indexed city workload. The benchmark records the real
// ratio (acceptance: >= 1.5x); as with the indexed/exhaustive guard,
// only an outright inversion fails here so shared-CPU test runs cannot
// flake.
func TestCityScaleFastSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("city-scale workload in -short mode")
	}
	if raceEnabled {
		t.Skip("wall-clock ratio is meaningless under race instrumentation")
	}
	runCityMedium(t, mac.MediumConfig{}, 1, true) // warm caches both ways
	start := time.Now()
	runCityMedium(t, mac.MediumConfig{}, 2, false)
	exact := time.Since(start)
	start = time.Now()
	runCityMedium(t, mac.MediumConfig{}, 2, true)
	fast := time.Since(start)
	ratio := float64(exact) / float64(fast)
	t.Logf("exact=%v fast=%v speedup=%.2fx at %d stations", exact, fast, ratio, cityBenchVehicles+4)
	if ratio < 1 {
		t.Fatalf("fast channel mode SLOWER than exact (%.2fx); expected >= 1.5x under benchmark conditions", ratio)
	}
}
