//go:build race

package repro

// raceEnabled reports whether the race detector instruments this test
// binary; wall-clock-sensitive assertions skip themselves under it.
const raceEnabled = true
