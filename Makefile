# Targets mirror .github/workflows/ci.yml one-to-one so local runs and
# CI can never drift.

GO ?= go

.PHONY: all build test short race bench bench-traffic bench-json fmt vet check

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# The traffic-subsystem benchmarks alone, shrunk by -short: the CI smoke
# for the closed-loop vehicle dynamics.
bench-traffic:
	$(GO) test -run=NONE -bench='Traffic|StopGo' -benchtime=1x -short .

# Machine-readable benchmark snapshot; the committed BENCH_<n>.json files
# track the perf trajectory PR over PR. Two steps (not a pipe) so a
# failed bench run cannot silently produce a truncated snapshot.
bench-json:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./... > bench.out.tmp
	$(GO) run ./cmd/benchjson < bench.out.tmp > BENCH_2.json
	rm bench.out.tmp

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

check: build fmt vet short
