# Targets mirror .github/workflows/ci.yml one-to-one so local runs and
# CI can never drift.

GO ?= go

.PHONY: all build test short race bench fmt vet check

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

check: build fmt vet short
