# Targets mirror .github/workflows/ci.yml one-to-one so local runs and
# CI can never drift.

GO ?= go

.PHONY: all build test short race bench bench-traffic bench-json bench-compare fmt vet check sweep-resume crash-resume soak sweepd-smoke metrics-smoke

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x -benchmem ./...

# The traffic-subsystem benchmarks alone, shrunk by -short: the CI smoke
# for the closed-loop vehicle dynamics (including the demand-driven city
# round with OD injection and actuated signals).
bench-traffic:
	$(GO) test -run=NONE -bench='Traffic|StopGo|CityDemand' -benchtime=1x -short .

# Machine-readable benchmark snapshot; the committed BENCH_<n>.json files
# track the perf trajectory PR over PR. Two steps (not a pipe) so a
# failed bench run cannot silently produce a truncated snapshot.
BENCH_OUT ?= BENCH_7.json
bench-json:
	$(GO) test -run=NONE -bench=. -benchtime=1x -benchmem ./... > bench.out.tmp
	$(GO) run ./cmd/benchjson < bench.out.tmp > $(BENCH_OUT)
	rm bench.out.tmp

# Diff the two newest committed BENCH_<n>.json snapshots (benchjson
# auto-selects them by numeric suffix, so this gate cannot go stale as
# snapshots accumulate): fails on any shared benchmark regressing its
# ns/op or allocs/op by more than 2x. Deterministic (committed files
# only), so CI can gate on it without re-running benchmarks.
bench-compare:
	$(GO) run ./cmd/benchjson -compare

# Resume gate: one small sweep twice against a shared result store; the
# second run must compute zero units and reproduce the first byte for
# byte (timings.json provenance sidecar excluded).
sweep-resume:
	sh scripts/ci_sweep_resume.sh

# Crash-safety gate: SIGKILL a sweep mid-run (parked by an armed
# faultpoint), then resume against the same store and require the
# outputs byte-identical to an uninterrupted baseline.
crash-resume:
	sh scripts/ci_crash_resume.sh

# Chaos-soak gate (nightly): repeated sweeps with seed-derived fault
# schedules armed on the result store's load/save paths, each required
# to stay byte-identical to a clean baseline, plus a disarmed healing
# run over the battered store. SOAK_SEED/SOAK_ITERS tune the schedule.
soak:
	sh scripts/ci_soak.sh

# Results-API smoke: sweep, start sweepd, check catalogue, typed
# content types, the ETag/If-None-Match 304 contract, and the
# /api/metrics (Prometheus exposition, linted) + /api/progress
# telemetry endpoints.
sweepd-smoke:
	sh scripts/ci_sweepd_smoke.sh

# Telemetry gate without a server: -progress ticker, metrics.json core
# counters, and byte-identity of the sweep with metrics on vs off.
metrics-smoke:
	sh scripts/ci_metrics_smoke.sh

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

check: build fmt vet short
